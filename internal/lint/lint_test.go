package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	testLoader *Loader
	loaderErr  error
)

// sharedLoader builds one loader with the module's dependency closure
// available, shared across analyzer tests (export-data discovery shells
// out to `go list` once).
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		testLoader = NewLoader()
		loaderErr = testLoader.LoadDeps()
	})
	if loaderErr != nil {
		t.Fatalf("loading dependency closure: %v", loaderErr)
	}
	return testLoader
}

// runTestdata asserts an analyzer against its annotated testdata package.
func runTestdata(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	res, err := RunAnalyzerTest(sharedLoader(t), dir, analyzers...)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	for _, d := range res.Unexpected {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range res.Unmatched {
		t.Errorf("unmatched expectation: %s", w)
	}
}

func TestCtxFlow(t *testing.T)   { runTestdata(t, "testdata/src/ctxflow", CtxFlow) }
func TestWireSafe(t *testing.T)  { runTestdata(t, "testdata/src/wiresafe", WireSafe) }
func TestDetRand(t *testing.T)   { runTestdata(t, "testdata/src/detrand", DetRand) }
func TestErrFlow(t *testing.T)   { runTestdata(t, "testdata/src/errflow", ErrFlow) }
func TestLockGuard(t *testing.T) { runTestdata(t, "testdata/src/lockguard", LockGuard) }
func TestLockOrder(t *testing.T) { runTestdata(t, "testdata/src/lockorder", LockOrder) }
func TestGoLeak(t *testing.T)    { runTestdata(t, "testdata/src/goleak", GoLeak) }
func TestVecShape(t *testing.T)  { runTestdata(t, "testdata/src/vecshape", VecShape) }

// TestLockOrderStateIsolation asserts the per-run Begin state does not
// leak between invocations: the same cycle re-reported on a second run
// proves the graph was rebuilt, not remembered.
func TestLockOrderStateIsolation(t *testing.T) {
	for i := 0; i < 2; i++ {
		res, err := RunAnalyzerTest(sharedLoader(t), "testdata/src/lockorder", LockOrder)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Failed() {
			t.Errorf("run %d deviated: unexpected=%v unmatched=%v", i, res.Unexpected, res.Unmatched)
		}
	}
}

// TestSuppressionRequiresReason asserts the framework rejects bare
// //lint:ignore directives: a suppression without a justification is
// itself a finding.
func TestSuppressionRequiresReason(t *testing.T) {
	src := `package p

func f() {
	//lint:ignore ctxflow
	_ = 1
	//lint:ignore
	_ = 2
	//lint:ignore ctxflow documented reason here
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := CollectSuppressions(fset, []*ast.File{f})
	malformed := sup.Malformed()
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed directives, want 2: %v", len(malformed), malformed)
	}
	for _, d := range malformed {
		if d.Analyzer != "lint" || !strings.Contains(d.Message, "reason") {
			t.Errorf("malformed diagnostic %q does not demand a reason", d.Message)
		}
	}
	// The well-formed directive must suppress its own and the next line.
	ok := Diagnostic{Analyzer: "ctxflow", Pos: posOfLine(fset, f, 9)}
	if !sup.Suppressed(ok) {
		t.Errorf("well-formed directive did not suppress a same-analyzer diagnostic")
	}
	other := Diagnostic{Analyzer: "wiresafe", Pos: posOfLine(fset, f, 9)}
	if sup.Suppressed(other) {
		t.Errorf("directive for ctxflow suppressed a wiresafe diagnostic")
	}
}

// posOfLine returns some position on the given 1-based line of the file.
func posOfLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	tf := fset.File(f.Pos())
	return tf.LineStart(line)
}

// TestModuleClean runs the full suite over the whole module and requires
// zero findings — the same gate `go run ./cmd/skalla-lint ./...` enforces
// in CI. A finding here means either new code broke an invariant or a
// suppression lost its reason.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := NewLoader()
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding: %s", d.String(l.Fset))
	}
}

// TestAnalyzerMetadata pins the suite's names, which LINT.md and
// //lint:ignore directives refer to.
func TestAnalyzerMetadata(t *testing.T) {
	want := []string{"ctxflow", "wiresafe", "detrand", "errflow", "lockguard", "lockorder", "goleak", "vecshape"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
		if strings.ToLower(a.Name) != a.Name {
			t.Errorf("analyzer name %q must be lower-case", a.Name)
		}
	}
}
