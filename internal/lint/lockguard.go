// lockguard enforces //lint:guarded-by annotations: a struct field (or
// package-level variable) documented as guarded by a mutex may only be
// read or written while that mutex is held.
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockGuard checks that annotated fields are only touched inside their
// documented critical sections.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "guarded-by checker: fields and package vars annotated " +
		"//lint:guarded-by <mu> must only be accessed while the named " +
		"mutex (a sibling field on the same receiver, or a package-level " +
		"mutex) is held; reads under RLock are allowed, writes are not, " +
		"and taking a guarded field's address is an escape. Functions " +
		"whose name ends in Locked are trusted to be called with the " +
		"lock held.",
	Run: runLockGuard,
}

// guardSpec describes the mutex guarding one annotated object.
type guardSpec struct {
	name     string // the mutex's declared name
	pkgLevel bool   // guard is a package-level var, not a sibling field
}

func runLockGuard(pass *Pass) error {
	guarded := collectGuardedBy(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasLockedSuffix(fd.Name.Name) {
				continue
			}
			w := &lockWalker{pass: pass}
			w.onAccess = func(e ast.Expr, write, escape bool, held heldSet) {
				checkGuardedAccess(pass, guarded, e, write, escape, held)
			}
			w.walkFunc(fd.Body)
		}
	}
	return nil
}

// collectGuardedBy parses //lint:guarded-by directives on struct fields
// and package-level vars, reporting malformed ones, and returns the
// guarded object -> guard mapping.
func collectGuardedBy(pass *Pass) map[types.Object]guardSpec {
	guarded := map[types.Object]guardSpec{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					st, ok := s.Type.(*ast.StructType)
					if !ok {
						continue
					}
					collectStructGuards(pass, st, guarded)
				case *ast.ValueSpec:
					name, dir := guardedByName(s.Doc)
					if dir == nil {
						name, dir = guardedByName(s.Comment)
					}
					if dir == nil && len(gd.Specs) == 1 {
						name, dir = guardedByName(gd.Doc)
					}
					if dir == nil {
						continue
					}
					if name == "" {
						pass.Reportf(dir, "guarded-by directive missing the mutex name")
						continue
					}
					if !resolvePkgGuard(pass, name) {
						pass.Reportf(dir, "guarded-by names %q, which is not a package-level sync.Mutex/RWMutex", name)
						continue
					}
					for _, id := range s.Names {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							guarded[obj] = guardSpec{name: name, pkgLevel: true}
						}
					}
				}
			}
		}
	}
	return guarded
}

func collectStructGuards(pass *Pass, st *ast.StructType, guarded map[types.Object]guardSpec) {
	for _, field := range st.Fields.List {
		name, dir := guardedByName(field.Doc)
		if dir == nil {
			name, dir = guardedByName(field.Comment)
		}
		if dir == nil {
			continue
		}
		if name == "" {
			pass.Reportf(dir, "guarded-by directive missing the mutex name")
			continue
		}
		spec, ok := resolveStructGuard(pass, st, name)
		if !ok {
			pass.Reportf(dir, "guarded-by names %q, which is neither a sibling sync.Mutex/RWMutex field nor a package-level mutex", name)
			continue
		}
		for _, id := range field.Names {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				guarded[obj] = spec
			}
		}
	}
}

// guardedByName extracts the mutex name from a //lint:guarded-by comment
// in the group, returning the directive comment for error anchoring.
func guardedByName(cg *ast.CommentGroup) (string, *ast.Comment) {
	if cg == nil {
		return "", nil
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), directivePrefix+"guarded-by")
		if !ok || (rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t")) {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return "", c
		}
		return fields[0], c
	}
	return "", nil
}

// resolveStructGuard checks the named guard is a sibling mutex field of
// the struct, or falls back to a package-level mutex var.
func resolveStructGuard(pass *Pass, st *ast.StructType, name string) (guardSpec, bool) {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name != name {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj != nil && isMutexType(obj.Type()) {
				return guardSpec{name: name}, true
			}
			return guardSpec{}, false
		}
	}
	if resolvePkgGuard(pass, name) {
		return guardSpec{name: name, pkgLevel: true}, true
	}
	return guardSpec{}, false
}

// resolvePkgGuard reports whether name is a package-level mutex var.
func resolvePkgGuard(pass *Pass, name string) bool {
	obj := pass.Pkg.Scope().Lookup(name)
	v, ok := obj.(*types.Var)
	return ok && isMutexType(v.Type())
}

// checkGuardedAccess reports an access to a guarded object made outside
// its critical section.
func checkGuardedAccess(pass *Pass, guarded map[types.Object]guardSpec, e ast.Expr, write, escape bool, held heldSet) {
	var obj types.Object
	var baseExpr ast.Expr
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			obj = sel.Obj()
			baseExpr = x.X
		} else if u, ok := pass.TypesInfo.Uses[x.Sel]; ok {
			obj = u // qualified package-level var
		}
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
	}
	if obj == nil {
		return
	}
	spec, ok := guarded[obj]
	if !ok {
		return
	}
	var guardPath string
	if spec.pkgLevel {
		guardPath = spec.name
	} else {
		base := exprPath(baseExpr)
		if base == "" {
			pass.Reportf(e, "guarded field %q accessed through an unresolvable expression; cannot prove %q is held", obj.Name(), spec.name)
			return
		}
		guardPath = base + "." + spec.name
	}
	noun := "field"
	if v, ok := obj.(*types.Var); ok && !v.IsField() {
		noun = "variable"
	}
	if escape {
		pass.Reportf(e, "address of guarded %s %q escapes its critical section (guarded by %q)", noun, obj.Name(), guardPath)
		return
	}
	h, heldNow := held[guardPath]
	verb := "read"
	if write {
		verb = "written"
	}
	if !heldNow {
		pass.Reportf(e, "guarded %s %q %s without holding %q", noun, obj.Name(), verb, guardPath)
		return
	}
	if write && h.mode == lockShared {
		pass.Reportf(e, "guarded %s %q written while %q is held for reading (RLock)", noun, obj.Name(), guardPath)
	}
}
