// goleak checks goroutine lifecycles: every `go` statement in non-main,
// non-test code must have a bounded exit path, because skalla's -serve
// process is long-lived and fire-and-forget goroutines pile up in it.
//
// A launch is accepted when any of these hold:
//   - it is tracked: the statement immediately before the `go` is a
//     WaitGroup Add, or the goroutine body calls Done on a WaitGroup
//     (something a Close/Drain can wait on);
//   - the body has an exit signal: a receive from a channel (covering
//     select on ctx.Done()/done channels) or a range over a channel;
//   - the body has no unbounded loop at all (it terminates by reaching
//     its end).
//
// A launch whose target cannot be resolved statically (interface method,
// function value, other-package function) must be tracked, since nothing
// else can be proven about it.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak flags fire-and-forget goroutines with no provable exit path.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "goroutine lifecycle checker: every go statement outside " +
		"package main must be WaitGroup-tracked, carry an exit signal " +
		"(channel receive / select on ctx.Done or a done channel / range " +
		"over a channel), or provably terminate (no unbounded loop); " +
		"launches of unresolvable targets must be tracked.",
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) error {
	// Commands and examples are package main: their goroutines die with
	// the process, which is the bound.
	if pass.Pkg.Name() == "main" {
		return nil
	}
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, s := range list {
				gs, ok := unlabelStmt(s).(*ast.GoStmt)
				if !ok {
					continue
				}
				var prev ast.Stmt
				if i > 0 {
					prev = list[i-1]
				}
				checkGoStmt(pass, decls, gs, prev)
			}
			return true
		})
	}
	return nil
}

func unlabelStmt(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

func checkGoStmt(pass *Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt, prev ast.Stmt) {
	tracked := prevIsWaitGroupAdd(pass, prev)
	body := resolveGoBody(pass, decls, gs.Call)
	if body == nil {
		if !tracked {
			pass.Reportf(gs, "goroutine target is not statically resolvable and the launch is not WaitGroup-tracked: no provable exit path")
		}
		return
	}
	if !tracked && bodyCallsWaitGroupDone(pass, body) {
		tracked = true
	}
	if tracked {
		return
	}
	if bodyHasExitSignal(pass, body) {
		return
	}
	if bodyHasUnboundedLoop(body) {
		pass.Reportf(gs, "goroutine runs an unbounded loop with no exit signal (channel receive or select) and no WaitGroup tracking: it can never be shut down")
	}
}

// prevIsWaitGroupAdd reports whether the statement is `wg.Add(n)` on a
// sync.WaitGroup — the launch-is-tracked idiom used before `go`.
func prevIsWaitGroupAdd(pass *Pass, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	return isWaitGroupType(pass.TypesInfo.TypeOf(sel.X))
}

func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// resolveGoBody returns the launched function's body when it is a literal
// or a same-package declared function/method; nil otherwise.
func resolveGoBody(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch f := stripParens(call.Fun).(type) {
	case *ast.FuncLit:
		return f.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[f].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn := calleeFunc(pass.TypesInfo, call); fn != nil {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// bodyCallsWaitGroupDone reports whether the body (including nested
// literals) calls Done on a sync.WaitGroup.
func bodyCallsWaitGroupDone(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if isWaitGroupType(pass.TypesInfo.TypeOf(sel.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// bodyHasExitSignal reports whether the body receives from a channel
// (unary <-, which covers every receiving select case) or ranges over
// one.
func bodyHasExitSignal(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// bodyHasUnboundedLoop reports whether the body contains a `for` with no
// condition.
func bodyHasUnboundedLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil {
			found = true
			return false
		}
		return true
	})
	return found
}
