package lint

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
)

// expectation is one `// want "regex"` annotation in a testdata file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRe extracts the quoted or backquoted patterns of a want comment.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// AnalyzerTestResult is the outcome of one testdata run, in a form the
// test file can assert on without depending on *testing.T (so the harness
// stays usable from other packages' tests).
type AnalyzerTestResult struct {
	// Unexpected are diagnostics with no matching want annotation.
	Unexpected []string
	// Unmatched are want annotations no diagnostic satisfied.
	Unmatched []string
}

// Failed reports whether the run deviated from the annotations.
func (r *AnalyzerTestResult) Failed() bool {
	return len(r.Unexpected) > 0 || len(r.Unmatched) > 0
}

// RunAnalyzerTest loads the testdata package in dir with the loader and
// checks the analyzers' diagnostics (after suppression filtering, exactly
// as the driver applies it) against `// want "regex"` comments: each
// flagged line must carry a want annotation matching the message, and
// every annotation must be matched. The mechanics mirror
// golang.org/x/tools/go/analysis/analysistest, which this module cannot
// depend on.
func RunAnalyzerTest(loader *Loader, dir string, analyzers ...*Analyzer) (*AnalyzerTestResult, error) {
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	diags, err := RunAnalyzers([]*Package{pkg}, analyzers)
	if err != nil {
		return nil, err
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		ws, err := collectWants(pkg, f)
		if err != nil {
			return nil, err
		}
		wants = append(wants, ws...)
	}

	res := &AnalyzerTestResult{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			res.Unexpected = append(res.Unexpected, d.String(pkg.Fset))
		}
	}
	for _, w := range wants {
		if !w.matched {
			res.Unmatched = append(res.Unmatched, fmt.Sprintf("%s:%d: no diagnostic matched %q",
				w.file, w.line, w.pattern.String()))
		}
	}
	return res, nil
}

// collectWants parses the `// want` annotations of one file.
func collectWants(pkg *Package, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			matches := wantRe.FindAllStringSubmatch(rest, -1)
			if len(matches) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
			}
			for _, m := range matches {
				text := m[1]
				if m[2] != "" {
					text = m[2]
				}
				re, err := regexp.Compile(text)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern: %w", pos.Filename, pos.Line, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return out, nil
}
