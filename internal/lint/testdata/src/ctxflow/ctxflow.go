// Package ctxflow exercises the ctxflow analyzer: positive cases pass a
// fresh root context while a caller context is in scope, negative cases
// thread the parameter, have no context at all, or suppress deliberately.
package ctxflow

import "context"

func callee(ctx context.Context) error { return ctx.Err() }

func bad(ctx context.Context) error {
	return callee(context.Background()) // want `context\.Background\(\) called with a context\.Context in scope`
}

func badTODO(ctx context.Context) error {
	return callee(context.TODO()) // want `context\.TODO\(\) called with a context\.Context in scope`
}

func badAssign(ctx context.Context) error {
	detached := context.Background() // want `context\.Background\(\) called with a context\.Context in scope`
	return callee(detached)
}

// badClosure shows that closures inherit the enclosing context scope.
func badClosure(ctx context.Context) func() error {
	return func() error {
		return callee(context.Background()) // want `context\.Background\(\) called with a context\.Context in scope`
	}
}

// badNested fires even when the call is an argument of a derived-context
// constructor.
func badNested(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background()) // want `context\.Background\(\) called with a context\.Context in scope`
}

func good(ctx context.Context) error {
	return callee(ctx)
}

func goodDerived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return callee(sub)
}

// noParam has no caller context, so starting a root context is the only
// option and must not be flagged.
func noParam() error {
	return callee(context.Background())
}

// unnamed declares the parameter away; the function cannot thread it, so
// the analyzer stays quiet (the fix is naming the parameter, which then
// fires the check on the body).
func unnamed(_ context.Context) error {
	return callee(context.Background())
}

// detach documents an intentional break in the chain.
func detach(ctx context.Context) error {
	//lint:ignore ctxflow cleanup must survive request cancellation
	return callee(context.Background())
}
