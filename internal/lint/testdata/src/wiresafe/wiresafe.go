// Package wiresafe exercises the wiresafe analyzer over a miniature wire
// protocol: a tagged root envelope whose transitive field graph contains
// every class of gob hazard plus the safe shapes that must stay quiet.
package wiresafe

// Envelope is the wire root under audit.
//
//lint:wireroot
type Envelope struct {
	Op      int
	Payload *Payload
	Notes   []Note
	Done    func() error // want `func type, which gob cannot encode`
	secret  string       // want `unexported field Envelope\.secret never crosses the wire`
}

// Payload rides inside the envelope, so its fields are audited too.
type Payload struct {
	Values map[string]Inner
	Any    any      // want `interface-typed field wiresafe\.Payload\.Any needs every concrete type`
	Signal chan int // want `chan type, which gob cannot encode`
	Blob   Blob
	Next   *Payload // cycle: must terminate, no finding
}

// Inner demonstrates both an audited unexported field and a sanctioned
// decode-time cache.
type Inner struct {
	hidden int // want `unexported field wiresafe\.Inner\.hidden never crosses the wire`
	//lint:ignore wiresafe cache rebuilt lazily after decode
	cache map[string]int
	Value int64
}

// Note is a fully exported leaf: nothing to report.
type Note struct {
	Text string
	N    int
}

// Blob implements GobEncoder/GobDecoder, so its unexported innards are its
// own business and must not be flagged.
type Blob struct {
	data []byte
}

// GobEncode implements gob.GobEncoder.
func (b Blob) GobEncode() ([]byte, error) { return b.data, nil }

// GobDecode implements gob.GobDecoder.
func (b *Blob) GobDecode(p []byte) error { b.data = append([]byte(nil), p...); return nil }

// Unreachable is never referenced from a wire root; its unexported field
// is a plain in-memory concern.
type Unreachable struct {
	private int
}
