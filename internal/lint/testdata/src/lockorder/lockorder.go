// Package lockorder exercises the lockorder analyzer: a direct two-lock
// ordering cycle, an interprocedural cycle through a called function, a
// same-type self cycle, double acquisition, and a return with the lock
// still held; negative cases use consistent ordering, defer-unlock, and
// the Locked-suffix convention.
package lockorder

import "sync"

type a struct{ mu sync.Mutex }

type b struct{ mu sync.Mutex }

var (
	ga a
	gb b
)

// abOrder takes a.mu before b.mu; combined with baOrder below the graph
// has the cycle a.mu -> b.mu -> a.mu, reported on the edge from the
// cycle's smallest node.
func abOrder() {
	ga.mu.Lock()
	gb.mu.Lock() // want `lock order cycle: testdata/lockorder\.a\.mu -> testdata/lockorder\.b\.mu -> testdata/lockorder\.a\.mu`
	gb.mu.Unlock()
	ga.mu.Unlock()
}

func baOrder() {
	gb.mu.Lock()
	ga.mu.Lock()
	ga.mu.Unlock()
	gb.mu.Unlock()
}

type c struct{ mu sync.Mutex }

type d struct{ mu sync.Mutex }

var (
	gc c
	gd d
)

func lockD() {
	gd.mu.Lock()
	gd.mu.Unlock()
}

// cdViaCall acquires d.mu through a call while holding c.mu: the edge is
// interprocedural, and dcOrder closes the cycle.
func cdViaCall() {
	gc.mu.Lock()
	lockD() // want `lock order cycle: testdata/lockorder\.c\.mu -> testdata/lockorder\.d\.mu -> testdata/lockorder\.c\.mu`
	gc.mu.Unlock()
}

func dcOrder() {
	gd.mu.Lock()
	gc.mu.Lock()
	gc.mu.Unlock()
	gd.mu.Unlock()
}

// node locks two instances of the same type: instance-insensitively that
// is a self cycle (lock two nodes in opposite orders and they deadlock).
type node struct {
	mu   sync.Mutex
	next *node
}

func (n *node) link() {
	n.mu.Lock()
	n.next.mu.Lock() // want `testdata/lockorder\.node\.mu can be acquired while an instance of it is already held`
	n.next.mu.Unlock()
	n.mu.Unlock()
}

type e struct {
	mu sync.Mutex
	n  int
}

func doubleLock(x *e) {
	x.mu.Lock()
	x.mu.Lock() // want `mutex x\.mu locked again while already held`
	x.mu.Unlock()
	x.mu.Unlock()
}

// leakLock forgets to unlock on the early-return path.
func leakLock(x *e, cond bool) int {
	x.mu.Lock()
	if cond {
		return x.n // want `returns with x\.mu still locked`
	}
	x.mu.Unlock()
	return 0
}

func goodDefer(x *e) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.n
}

func goodBranches(x *e, cond bool) int {
	x.mu.Lock()
	if cond {
		x.mu.Unlock()
		return 1
	}
	x.mu.Unlock()
	return 0
}

// acquireLocked returns holding the lock by contract: the Locked suffix
// suppresses the exit-held report.
func acquireLocked(x *e) {
	x.mu.Lock()
}

// consistent nests in one direction only: no cycle.
type f struct{ mu sync.Mutex }

type g struct{ mu sync.Mutex }

var (
	gf f
	gg g
)

func consistentOne() {
	gf.mu.Lock()
	gg.mu.Lock()
	gg.mu.Unlock()
	gf.mu.Unlock()
}

func consistentTwo() {
	gf.mu.Lock()
	gg.mu.Lock()
	gg.mu.Unlock()
	gf.mu.Unlock()
}
