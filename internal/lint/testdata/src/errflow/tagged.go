// Package errflow exercises the errflow analyzer. This file is tagged
// wrap-errors, so fmt.Errorf calls that format an error argument must
// wrap one with %w.
//
//lint:wrap-errors
package errflow

import (
	"errors"
	"fmt"
)

// ErrBudget is a sentinel: returning it instead of wrapping is the other
// sanctioned way to keep errors inspectable.
var ErrBudget = errors.New("retry budget exhausted")

func flattenV(err error) error {
	return fmt.Errorf("call failed: %v", err) // want `wrap it with %w`
}

func flattenS(err error) error {
	return fmt.Errorf("call failed: %s", err) // want `wrap it with %w`
}

func wrap(err error) error {
	return fmt.Errorf("call failed: %w", err)
}

// annotate wraps the primary chain and annotates a secondary error with
// %v — the Reconnector's "cancelled (underlying i/o error)" pattern.
func annotate(primary, secondary error) error {
	return fmt.Errorf("%w (underlying: %v)", primary, secondary)
}

// fresh creates an original error: nothing to wrap.
func fresh(code int) error {
	return fmt.Errorf("bad opcode %d", code)
}

func sentinel() error {
	return ErrBudget
}

// terminal deliberately flattens for the wire (gob ships strings, not
// error chains) and says so.
func terminal(err error) string {
	//lint:ignore errflow Response.Err is a string on the wire; the chain ends here
	return fmt.Errorf("site error: %v", err).Error()
}
