// Shed classification: the Reconnector fails over immediately — without
// burning retry budget — when errors.Is finds ErrOverloaded or ErrDraining
// in a response's error chain. These sentinels mirror the transport
// package's; a handler that flattens them to text breaks that
// classification, so wrap-errors files must keep the chain intact.
//
//lint:wrap-errors
package errflow

import (
	"errors"
	"fmt"
)

// ErrOverloaded marks a request refused by a per-request resource limit.
var ErrOverloaded = errors.New("site overloaded")

// ErrDraining marks a request refused by a server shutting down gracefully.
var ErrDraining = errors.New("site draining")

// refuseOverloaded wraps the sentinel: errors.Is(err, ErrOverloaded)
// still matches after the annotation, so the caller fails over instead of
// retrying the same overloaded site.
func refuseOverloaded(rows, limit int) error {
	return fmt.Errorf("result has %d rows, limit %d: %w", rows, limit, ErrOverloaded)
}

// refuseDraining layers context on an already-wrapped chain; %w keeps
// every link inspectable.
func refuseDraining(site string, err error) error {
	return fmt.Errorf("site %s: %w", site, err)
}

// classify is the consumer the chain exists for.
func classify(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDraining):
		return "fail over now"
	default:
		return "retry"
	}
}

// flattenShed loses the sentinel: errors.Is sees only text, the shed
// response is misclassified as a transport fault, and the retry budget
// burns against a site that will refuse every attempt.
func flattenShed(err error) error {
	return fmt.Errorf("call refused: %v", err) // want `wrap it with %w`
}
