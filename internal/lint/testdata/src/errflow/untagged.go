// This file carries no //lint:wrap-errors tag: flattening is legal here.
package errflow

import "fmt"

func untaggedFlatten(err error) error {
	return fmt.Errorf("call failed: %v", err)
}
