// Package detrand exercises the detrand analyzer. This file is tagged
// deterministic, so wall-clock reads, the global math/rand source, and
// map-iteration-order dependent output are findings here.
//
//lint:deterministic
package detrand

import (
	"math/rand"
	"sort"
	"strings"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in a deterministic file`
}

func pick(n int) int {
	return rand.Intn(n) // want `global math/rand source \(rand\.Intn\)`
}

// seeded is the sanctioned pattern: an injectable seed feeding a private
// source. Constructing the source and calling its methods is fine.
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

func flatten(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out while ranging over a map`
	}
	return out
}

// mapKeys collects keys for an immediate sort: the analyzer cannot see
// the sort two lines down, so the collection carries a suppression with
// its justification — the documented escape hatch for this rule.
func mapKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		//lint:ignore detrand keys are sorted before return
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sum folds commutatively: order cannot leak, no finding.
func sum(m map[string]int) int {
	var t int
	for _, v := range m {
		t += v
	}
	return t
}

// copyMap writes into another map: an unordered sink, no finding.
func copyMap(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func build(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `writing to b while ranging over a map`
	}
	return b.String()
}

// buildSorted ranges over a sorted slice instead: no finding.
func buildSorted(m map[string]int) string {
	keys := mapKeys(m)
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
	}
	return b.String()
}

// perIteration appends to a loop-local slice: order cannot escape an
// iteration, no finding.
func perIteration(m map[string][]string) int {
	n := 0
	for k, vs := range m {
		parts := make([]string, 0, len(vs)+1)
		parts = append(parts, k)
		parts = append(parts, vs...)
		n += len(parts)
	}
	return n
}
