// This file carries no //lint:deterministic tag: the same constructions
// that are findings in tagged.go are legal here.
package detrand

import (
	"math/rand"
	"time"
)

func untaggedStamp() int64 {
	return time.Now().UnixNano()
}

func untaggedPick(n int) int {
	return rand.Intn(n)
}

func untaggedFlatten(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
