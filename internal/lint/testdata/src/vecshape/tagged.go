// Package vecshape exercises the vecshape analyzer. This file is tagged,
// so exported functions taking a []int32 selection must validate shape in
// their first statement.
//
//lint:vecshape
package vecshape

import "fmt"

type batch struct {
	n    int
	ints []int64
}

func (b *batch) Check() error {
	if len(b.ints) != b.n {
		return fmt.Errorf("bad shape")
	}
	return nil
}

func (b *batch) checkSel(sel []int32) error {
	for _, s := range sel {
		if int(s) < 0 || int(s) >= b.n {
			return fmt.Errorf("lane out of range")
		}
	}
	return nil
}

// Gather validates first: compliant.
func Gather(b *batch, sel []int32, dst []int64) ([]int64, error) {
	if err := b.checkSel(sel); err != nil {
		return nil, err
	}
	for _, lane := range sel {
		dst = append(dst, b.ints[lane])
	}
	return dst, nil
}

// GatherChecked validates through Check in the first statement: compliant.
func GatherChecked(b *batch, sel []int32) (int64, error) {
	if err := b.Check(); err != nil {
		return 0, err
	}
	var sum int64
	for _, lane := range sel {
		sum += b.ints[lane]
	}
	return sum, nil
}

func GatherUnchecked(b *batch, sel []int32) int64 { // want `exported kernel GatherUnchecked takes a selection but its first statement is not a shape validation`
	var sum int64
	for _, lane := range sel {
		sum += b.ints[lane]
	}
	return sum
}

func SumLate(b *batch, sel []int32) (int64, error) { // want `exported kernel SumLate takes a selection but its first statement is not a shape validation`
	var sum int64
	if err := b.checkSel(sel); err != nil { // too late: not the first statement
		return 0, err
	}
	for _, lane := range sel {
		sum += b.ints[lane]
	}
	return sum, nil
}

// gatherInternal is unexported: internal helpers run after the exported
// boundary validated, so they are exempt.
func gatherInternal(b *batch, sel []int32) int64 {
	var sum int64
	for _, lane := range sel {
		sum += b.ints[lane]
	}
	return sum
}

// NoSelection takes no []int32, so the rule does not apply.
func NoSelection(b *batch) int {
	return b.n
}
