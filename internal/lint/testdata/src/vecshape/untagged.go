// This file carries no //lint:vecshape tag: the same constructions that
// are findings in tagged.go are legal here.
package vecshape

func UntaggedGather(b *batch, sel []int32) int64 {
	var sum int64
	for _, lane := range sel {
		sum += b.ints[lane]
	}
	return sum
}
