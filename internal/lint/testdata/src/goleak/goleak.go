// Package goleak exercises the goleak analyzer: positive cases launch
// unbounded or unresolvable goroutines with no tracking, negative cases
// select on a done channel, range over a channel, are WaitGroup-tracked,
// or provably terminate.
package goleak

import (
	"context"
	"sync"
)

func work() {}

// spawnLooper leaks: unbounded loop, no signal, no tracking.
func spawnLooper() {
	go func() { // want `unbounded loop with no exit signal`
		for {
			work()
		}
	}()
}

// spawnCtx exits when the context is cancelled.
func spawnCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// spawnTracked is tracked by the WaitGroup Add immediately before the
// launch: a Close/Drain can wait for it.
func spawnTracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			work()
		}
	}()
}

// spawnBounded terminates by reaching the end of its body.
func spawnBounded(ch chan int) {
	go func() { ch <- 1 }()
}

type runner interface{ Run() }

// spawnDynamic launches through an interface: nothing can be proven, so
// the launch must be tracked — and is not.
func spawnDynamic(r runner) {
	go r.Run() // want `not statically resolvable`
}

func spawnDynamicTracked(r runner, wg *sync.WaitGroup) {
	wg.Add(1)
	go r.Run()
}

// loop is resolvable within the package and has an exit signal.
func loop(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
			work()
		}
	}
}

func spawnDecl(done chan struct{}) {
	go loop(done)
}

// hot spins forever with no way out.
func hot() {
	for {
		work()
	}
}

func spawnHot() {
	go hot() // want `unbounded loop with no exit signal`
}

// spawnRange ends when the channel is closed.
func spawnRange(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}
