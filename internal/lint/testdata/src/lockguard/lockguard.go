// Package lockguard exercises the lockguard analyzer: positive cases
// touch annotated fields outside their critical section (including after
// an unlock, from a closure, and by letting the address escape), negative
// cases hold the documented mutex, use Locked-suffix helpers, or lock
// inside the closure.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the running total.
	//
	//lint:guarded-by mu
	n int
}

func (c *counter) bad() int {
	return c.n // want `guarded field "n" read without holding "c\.mu"`
}

func (c *counter) badWrite() {
	c.n++ // want `guarded field "n" written without holding "c\.mu"`
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) goodExplicitUnlock() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

func (c *counter) badAfterUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want `guarded field "n" read without holding "c\.mu"`
}

// badClosure escapes the critical section: the returned closure runs
// after the deferred unlock.
func (c *counter) badClosure() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.n++ // want `guarded field "n" written without holding "c\.mu"`
	}
}

func (c *counter) goodClosureLocksItself() func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}

func (c *counter) badEscape() *int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &c.n // want `address of guarded field "n" escapes its critical section`
}

// addLocked is trusted: the Locked suffix documents that callers hold
// c.mu.
func (c *counter) addLocked(d int) {
	c.n += d
}

// badBranchJoin: every branch released the lock before the tail access.
func (c *counter) badBranchJoin(b bool) int {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
	} else {
		c.mu.Unlock()
	}
	return c.n // want `guarded field "n" read without holding "c\.mu"`
}

func (c *counter) goodBranchHeld(b bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b {
		return c.n
	}
	return 0
}

type rw struct {
	mu sync.RWMutex
	//lint:guarded-by mu
	m map[string]int
}

func (r *rw) goodRead(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func (r *rw) badWriteUnderRLock(k string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.m[k] = 1 // want `guarded field "m" written while "r\.mu" is held for reading`
}

func (r *rw) goodWrite(k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k] = 1
}

// stateMu guards the package-level counter below.
var stateMu sync.Mutex

//lint:guarded-by stateMu
var state int

func badPkgVar() int {
	return state // want `guarded variable "state" read without holding "stateMu"`
}

func goodPkgVar() int {
	stateMu.Lock()
	defer stateMu.Unlock()
	return state
}

// A grouped var block with a spec-level directive, the site-registry
// pattern.
var (
	pairMu sync.Mutex
	//lint:guarded-by pairMu
	pair int
)

func badPair() int {
	return pair // want `guarded variable "pair" read without holding "pairMu"`
}

func goodPair() int {
	pairMu.Lock()
	defer pairMu.Unlock()
	return pair
}

// lazy mirrors the relation.Schema case: a field guarded by a
// package-level mutex rather than a sibling.
type lazy struct {
	//lint:guarded-by idxMu
	idx map[string]int
}

var idxMu sync.Mutex

func (l *lazy) good(k string) int {
	idxMu.Lock()
	defer idxMu.Unlock()
	return l.idx[k]
}

func (l *lazy) bad(k string) int {
	return l.idx[k] // want `guarded field "idx" read without holding "idxMu"`
}
