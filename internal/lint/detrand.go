package lint

import (
	"go/ast"
	"go/types"
)

// DetRand enforces determinism in files tagged //lint:deterministic: the
// aggregate-state encoders (internal/agg), the local GMDJ evaluator
// (internal/gmdj), and the retry/backoff paths. Three constructions break
// reproducibility there:
//
//   - time.Now: wall-clock reads make output (or retry schedules) differ
//     run to run; inject a clock or take timestamps as arguments.
//   - the global math/rand source (rand.Intn, rand.Float64, ...): the
//     process-wide source cannot be seeded per component, so chaos tests
//     and backoff sequences stop being reproducible. Use
//     rand.New(rand.NewSource(seed)) with an injected seed, as the
//     Reconnector does.
//   - ranging over a map while appending to an outer slice or writing to
//     an outer Builder/Buffer: map iteration order is randomized, so the
//     produced sequence differs run to run — which turns wire encodings
//     and merged results nondeterministic. Sort the keys first.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbids time.Now, the global math/rand source, and map-iteration-order " +
		"dependent output in files tagged //lint:deterministic",
	Run: runDetRand,
}

func runDetRand(pass *Pass) error {
	for _, file := range pass.Files {
		if !fileHasDirective(file, "deterministic") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRangeOrder(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDetCall flags time.Now and global math/rand source calls.
func checkDetCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	// Package-level functions only: methods on a seeded *rand.Rand are the
	// sanctioned pattern, so x.Intn(...) with x a *rand.Rand is fine.
	if _, isPkg := pass.TypesInfo.Uses[firstIdent(sel.X)].(*types.PkgName); !isPkg {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" {
			pass.Reportf(call, "time.Now in a deterministic file; inject a clock "+
				"or take the timestamp as an argument")
		}
	case "math/rand", "math/rand/v2":
		switch obj.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return // constructing a seeded source is the sanctioned pattern
		}
		pass.Reportf(call, "global math/rand source (rand.%s) in a deterministic file; "+
			"use rand.New(rand.NewSource(seed)) with an injected seed", obj.Name())
	}
}

// firstIdent returns the identifier at the root of a selector base, or nil.
func firstIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkMapRangeOrder flags map-range loops whose body emits into ordered
// sinks declared outside the loop.
func checkMapRangeOrder(pass *Pass, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(outer, ...) — the classic nondeterministic flattening.
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if obj, ok := pass.TypesInfo.Uses[firstIdent(call.Args[0])]; ok && declaredOutside(obj, rs) {
				pass.Reportf(call, "append to %s while ranging over a map: iteration "+
					"order is randomized, so the slice order differs run to run; sort the keys first",
					obj.Name())
			}
			return true
		}
		// builder.WriteString(...) / buffer.Write(...) on an outer sink.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isWriteMethod(sel.Sel.Name) {
			base := firstIdent(sel.X)
			obj, ok := pass.TypesInfo.Uses[base]
			if !ok || !declaredOutside(obj, rs) {
				return true
			}
			if isOrderedSink(obj.Type()) {
				pass.Reportf(call, "writing to %s while ranging over a map: iteration "+
					"order is randomized, so the output differs run to run; sort the keys first",
					obj.Name())
			}
		}
		return true
	})
}

// declaredOutside reports whether obj's declaration precedes (or follows)
// the range statement, i.e. the object outlives one iteration.
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// isWriteMethod matches the ordered-output methods of builders/buffers.
func isWriteMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// isOrderedSink reports whether t is strings.Builder or bytes.Buffer
// (possibly behind a pointer).
func isOrderedSink(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
