package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// WireSafe audits the transitive field graph of gob wire roots — struct
// types whose declaration carries //lint:wireroot (transport.Request and
// transport.Response). gob fails open in ways that corrupt results rather
// than erroring: unexported fields are silently dropped (a field added to
// a payload struct but left unexported simply vanishes at the far side,
// invalidating the paper's Theorem 2 byte accounting and any result it
// carried), interface-typed fields panic at encode time unless every
// concrete type is registered, and func/chan/unsafe.Pointer fields cannot
// be encoded at all. Intentional non-wire fields (caches rebuilt after
// decode) must carry //lint:ignore wiresafe <reason>.
var WireSafe = &Analyzer{
	Name: "wiresafe",
	Doc: "walks the transitive field graph of //lint:wireroot structs and reports " +
		"fields gob would drop, reject, or require registration for",
	Run: runWireSafe,
}

func runWireSafe(pass *Pass) error {
	w := &wireWalker{pass: pass, visited: map[*types.Named]bool{}, reported: map[string]bool{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// The directive may sit on the type spec or, for single-spec
				// declarations, on the enclosing GenDecl.
				if !commentHasDirective(ts.Doc, "wireroot") && !commentHasDirective(gd.Doc, "wireroot") {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name]
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					pass.Reportf(ts, "wireroot %s is not a defined type", ts.Name.Name)
					continue
				}
				w.walkNamed(named, ts.Name.Name)
			}
		}
	}
	return nil
}

// wireWalker performs the breadth of the field-graph audit.
type wireWalker struct {
	pass     *Pass
	visited  map[*types.Named]bool
	reported map[string]bool
}

// walkNamed audits a named type reached from a wire root via path.
func (w *wireWalker) walkNamed(named *types.Named, path string) {
	if w.visited[named] {
		return
	}
	w.visited[named] = true
	if selfEncoding(named) {
		return // GobEncoder/BinaryMarshaler types manage their own wire form
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		w.walkType(named.Underlying(), named.Obj().Pos(), path)
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fpath := path + "." + f.Name()
		if !f.Exported() && !f.Embedded() {
			w.report(f.Pos(), fpath, "unexported field %s never crosses the wire: "+
				"gob drops it silently and the far side sees a zero value", fpath)
			continue
		}
		w.walkType(f.Type(), f.Pos(), fpath)
	}
}

// walkType audits one type occurrence reached at pos via path.
func (w *wireWalker) walkType(t types.Type, pos token.Pos, path string) {
	switch t := t.(type) {
	case *types.Named:
		if selfEncoding(t) {
			return
		}
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			w.report(pos, path, "interface-typed field %s needs every concrete type "+
				"gob-registered, or encoding panics at runtime", path)
			return
		}
		w.walkNamed(t, typeLabel(t))
	case *types.Pointer:
		w.walkType(t.Elem(), pos, path)
	case *types.Slice:
		w.walkType(t.Elem(), pos, path+"[]")
	case *types.Array:
		w.walkType(t.Elem(), pos, path+"[]")
	case *types.Map:
		w.walkType(t.Key(), pos, path+"[key]")
		w.walkType(t.Elem(), pos, path+"[value]")
	case *types.Interface:
		w.report(pos, path, "interface-typed field %s needs every concrete type "+
			"gob-registered, or encoding panics at runtime", path)
	case *types.Chan:
		w.report(pos, path, "field %s has chan type, which gob cannot encode", path)
	case *types.Signature:
		w.report(pos, path, "field %s has func type, which gob cannot encode", path)
	case *types.Basic:
		if t.Kind() == types.UnsafePointer {
			w.report(pos, path, "field %s has unsafe.Pointer type, which gob cannot encode", path)
		}
		if t.Kind() == types.Complex64 || t.Kind() == types.Complex128 {
			return // gob handles complex
		}
	case *types.Struct:
		// Anonymous struct field: audit it inline.
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			fpath := path + "." + f.Name()
			if !f.Exported() && !f.Embedded() {
				w.report(f.Pos(), fpath, "unexported field %s never crosses the wire: "+
					"gob drops it silently and the far side sees a zero value", fpath)
				continue
			}
			w.walkType(f.Type(), f.Pos(), fpath)
		}
	}
}

// report deduplicates findings per field path.
func (w *wireWalker) report(pos token.Pos, path, format string, args ...any) {
	if w.reported[path] {
		return
	}
	w.reported[path] = true
	w.pass.Report(pos, format, args...)
}

// selfEncoding reports whether the type (or its pointer form) implements
// gob.GobEncoder or encoding.BinaryMarshaler and therefore controls its
// own wire representation.
func selfEncoding(t types.Type) bool {
	for _, name := range []string{"GobEncode", "MarshalBinary"} {
		for _, recv := range []types.Type{t, types.NewPointer(t)} {
			obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, name)
			if fn, ok := obj.(*types.Func); ok {
				sig := fn.Type().(*types.Signature)
				if sig.Params().Len() == 0 && sig.Results().Len() == 2 {
					return true
				}
			}
		}
	}
	return false
}

// typeLabel renders a named type for diagnostic paths.
func typeLabel(t *types.Named) string {
	obj := t.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return fmt.Sprintf("%s.%s", obj.Pkg().Name(), obj.Name())
}
