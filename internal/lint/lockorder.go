// lockorder builds a static lock-acquisition graph across the whole
// module and reports cycles as potential deadlocks, plus any Lock() that
// can reach a return with no Unlock on that path.
//
// Nodes are instance-insensitive lock identities ("pkg.Type.mu" for field
// mutexes, "pkg.var" for package-level ones). An edge A -> B is recorded
// when B is acquired while A is held — directly, or interprocedurally
// through statically-dispatched calls: each function's acquired-lock
// summary is closed over its call graph, and a call made with A held adds
// edges from A to everything the callee can acquire. The analyzer keeps
// its graph in per-run state (Analyzer.Begin); packages arrive in
// dependency order, so a cycle is reported in the pass that adds its
// closing edge, deduplicated by the cycle's node set.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder detects potential deadlocks from inconsistent lock ordering
// and lock/unlock imbalance.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "static lock-order checker: builds the module-wide mutex " +
		"acquisition graph (an edge when one mutex is acquired while " +
		"another is held, followed through direct calls) and reports " +
		"cycles as potential deadlocks, double-acquisition of the same " +
		"mutex, and functions that return with a lock still held on some " +
		"path. Functions whose name ends in Locked may return held.",
	Begin: func() any { return newLockOrderState() },
	Run:   runLockOrder,
}

// lockOrderState is the module-wide graph accumulated across packages of
// one run.
type lockOrderState struct {
	// acquires maps a function's FullName to the lock nodes it acquires
	// directly in its own body.
	acquires map[string]map[string]bool
	// calls maps a function to its statically-resolved callees.
	calls map[string]map[string]bool
	// edges is the direct acquired-while-held graph, first position wins.
	edges map[string]map[string]token.Pos
	// pending records calls made while a lock was held; they are expanded
	// against the transitive acquires of the callee after each package.
	pending []lockPending
	// reported holds canonical node-set keys of cycles already diagnosed.
	reported map[string]bool
}

type lockPending struct {
	heldNode string
	callee   string
	pos      token.Pos
}

func newLockOrderState() *lockOrderState {
	return &lockOrderState{
		acquires: map[string]map[string]bool{},
		calls:    map[string]map[string]bool{},
		edges:    map[string]map[string]token.Pos{},
		reported: map[string]bool{},
	}
}

func (st *lockOrderState) acquire(fn, node string) {
	m := st.acquires[fn]
	if m == nil {
		m = map[string]bool{}
		st.acquires[fn] = m
	}
	m[node] = true
}

func (st *lockOrderState) call(fn, callee string) {
	m := st.calls[fn]
	if m == nil {
		m = map[string]bool{}
		st.calls[fn] = m
	}
	m[callee] = true
}

func addLockEdge(edges map[string]map[string]token.Pos, from, to string, pos token.Pos) {
	m := edges[from]
	if m == nil {
		m = map[string]token.Pos{}
		edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

func runLockOrder(pass *Pass) error {
	st, ok := pass.State.(*lockOrderState)
	if !ok {
		return fmt.Errorf("lockorder: missing per-run state")
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnObj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fnObj == nil {
				continue
			}
			walkLockOrderFunc(pass, st, fd, fnObj.FullName())
		}
	}
	reportLockCycles(pass, st)
	return nil
}

func walkLockOrderFunc(pass *Pass, st *lockOrderState, fd *ast.FuncDecl, fullName string) {
	// cur tracks which summary acquisitions fold into; goroutine bodies
	// get a synthetic never-called name so a lock taken inside `go func`
	// does not look like a lock the enclosing function holds for callers.
	cur := fullName
	skipExit := hasLockedSuffix(fd.Name.Name)
	var w *lockWalker
	w = &lockWalker{pass: pass}
	w.onAcquire = func(x ast.Expr, path string, mode lockMode, pos token.Pos, held heldSet) {
		node := lockNode(pass, x)
		if node == "" {
			return
		}
		st.acquire(cur, node)
		if h, dup := held[path]; dup {
			pass.Report(pos, "mutex %s locked again while already held (acquired at %s): deadlock",
				path, pass.Fset.Position(h.pos))
			return
		}
		for _, p := range held.sortedPaths() {
			h := held[p]
			if h.node == "" {
				continue
			}
			addLockEdge(st.edges, h.node, node, pos)
		}
	}
	w.onCall = func(call *ast.CallExpr, held heldSet) {
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil {
			return
		}
		name := callee.FullName()
		st.call(cur, name)
		for _, p := range held.sortedPaths() {
			if h := held[p]; h.node != "" {
				st.pending = append(st.pending, lockPending{heldNode: h.node, callee: name, pos: call.Pos()})
			}
		}
	}
	w.onExit = func(pos token.Pos, held heldSet) {
		if skipExit {
			return
		}
		for _, p := range held.sortedPaths() {
			pass.Report(pos, "returns with %s still locked (acquired at %s): no Unlock on this path",
				p, pass.Fset.Position(held[p].pos))
		}
	}
	w.onFuncLit = func(lit *ast.FuncLit, goStmt bool) {
		prev := cur
		if goStmt {
			cur = prev + "·go"
		}
		w.walkFunc(lit.Body)
		cur = prev
	}
	w.walkFunc(fd.Body)
}

// reportLockCycles closes the acquires summaries over the call graph,
// expands call-while-holding edges, and reports each new cycle once.
func reportLockCycles(pass *Pass, st *lockOrderState) {
	// Transitive acquires via memoized DFS; the call graph may itself be
	// recursive, so an in-progress marker breaks cycles.
	memo := map[string]map[string]bool{}
	inProgress := map[string]bool{}
	var expand func(fn string) map[string]bool
	expand = func(fn string) map[string]bool {
		if m, ok := memo[fn]; ok {
			return m
		}
		if inProgress[fn] {
			return nil
		}
		inProgress[fn] = true
		out := map[string]bool{}
		for n := range st.acquires[fn] {
			out[n] = true
		}
		for callee := range st.calls[fn] {
			for n := range expand(callee) {
				out[n] = true
			}
		}
		delete(inProgress, fn)
		memo[fn] = out
		return out
	}

	edges := map[string]map[string]token.Pos{}
	for from, m := range st.edges {
		for to, pos := range m {
			addLockEdge(edges, from, to, pos)
		}
	}
	for _, p := range st.pending {
		acq := expand(p.callee)
		nodes := make([]string, 0, len(acq))
		for n := range acq {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		for _, n := range nodes {
			addLockEdge(edges, p.heldNode, n, p.pos)
		}
	}

	for _, cycle := range lockCycles(edges) {
		key := cycleKey(cycle)
		if st.reported[key] {
			continue
		}
		st.reported[key] = true
		pos := edges[cycle[0]][cycle[1]]
		if len(cycle) == 2 && cycle[0] == cycle[1] {
			pass.Report(pos, "lock order cycle: %s can be acquired while an instance of it is already held (potential deadlock)", cycle[0])
			continue
		}
		pass.Report(pos, "lock order cycle: %s (potential deadlock)", strings.Join(cycle, " -> "))
	}
}

// cycleKey canonicalizes a cycle by its sorted distinct node set.
func cycleKey(cycle []string) string {
	set := map[string]bool{}
	for _, n := range cycle {
		set[n] = true
	}
	nodes := make([]string, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return strings.Join(nodes, "|")
}

// lockCycles finds, for every strongly-connected component with a cycle,
// one concrete closed path through it, deterministically (smallest node
// first, smallest successor preferred).
func lockCycles(edges map[string]map[string]token.Pos) [][]string {
	nodes := map[string]bool{}
	for from, m := range edges {
		nodes[from] = true
		for to := range m {
			nodes[to] = true
		}
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	succ := func(n string) []string {
		m := edges[n]
		out := make([]string, 0, len(m))
		for to := range m {
			out = append(out, to)
		}
		sort.Strings(out)
		return out
	}

	// Tarjan's SCC algorithm, iterating in sorted order for determinism.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wn := range succ(v) {
			if _, seen := index[wn]; !seen {
				strongconnect(wn)
				if low[wn] < low[v] {
					low[v] = low[wn]
				}
			} else if onStack[wn] && index[wn] < low[v] {
				low[v] = index[wn]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				wn := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[wn] = false
				comp = append(comp, wn)
				if wn == v {
					break
				}
			}
			sort.Strings(comp)
			sccs = append(sccs, comp)
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	var out [][]string
	for _, comp := range sccs {
		if len(comp) == 1 {
			n := comp[0]
			if _, self := edges[n][n]; self {
				out = append(out, []string{n, n})
			}
			continue
		}
		inComp := map[string]bool{}
		for _, n := range comp {
			inComp[n] = true
		}
		if path := closedPath(comp[0], inComp, succ); path != nil {
			out = append(out, path)
		}
	}
	return out
}

// closedPath finds a cycle from start back to start inside one SCC.
func closedPath(start string, inComp map[string]bool, succ func(string) []string) []string {
	visited := map[string]bool{}
	var dfs func(n string, path []string) []string
	dfs = func(n string, path []string) []string {
		for _, to := range succ(n) {
			if !inComp[to] {
				continue
			}
			if to == start {
				return append(append([]string{}, path...), start)
			}
			if visited[to] {
				continue
			}
			visited[to] = true
			if r := dfs(to, append(path, to)); r != nil {
				return r
			}
		}
		return nil
	}
	visited[start] = true
	return dfs(start, []string{start})
}
