// Package lint is Skalla's first-party static-analysis suite. It enforces
// the correctness invariants PR 1 made load-bearing but that the compiler
// cannot see: context flow (cancellation and deadlines must thread through
// every site call), wire safety (everything crossing the gob wire must
// survive the round trip, or Theorem 2's byte accounting silently lies),
// determinism (seeded randomness and order-stable output in packages whose
// results must reproduce), and error flow (errors crossing package
// boundaries must stay inspectable so failover can tell retryable from
// fatal).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built only on the standard library's
// go/ast and go/types, because this module carries no third-party
// dependencies. Packages load from source with export data for the
// standard library (see load.go); cmd/skalla-lint is the multichecker
// driver and LINT.md documents each rule.
//
// # Directives
//
// Analyzers are steered by magic comments:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//	    Suppresses matching diagnostics reported on the same line or the
//	    line directly below the directive. The reason is mandatory; a
//	    bare suppression is itself a diagnostic.
//	//lint:deterministic
//	    Tags the enclosing FILE as deterministic: detrand forbids
//	    time.Now, the global math/rand source, and map-iteration-order
//	    dependent output in it.
//	//lint:wrap-errors
//	    Tags the enclosing FILE for errflow: fmt.Errorf calls that
//	    format an error argument must wrap it with %w.
//	//lint:wireroot
//	    On a struct type declaration: marks the type as a gob wire root
//	    whose transitive field graph wiresafe audits.
//	//lint:guarded-by <mu>
//	    On a struct field (or package-level variable) declaration: the
//	    field may only be accessed while the named mutex — a sibling
//	    field of the same struct, or a package-level mutex — is held.
//	    lockguard enforces it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one static-analysis rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by skalla-lint -list.
	Doc string
	// Run executes the analyzer on one package, reporting findings via
	// pass.Report. It returns an error only for analyzer malfunctions —
	// findings are diagnostics, not errors.
	Run func(pass *Pass) error
	// Begin, when set, is called once per RunAnalyzers invocation, before
	// any pass; the value it returns is available as Pass.State in every
	// subsequent pass of that run. Module-scoped analyzers (lockorder)
	// accumulate cross-package facts in it — packages arrive in
	// dependency order, so by the time a package is analyzed every
	// summary it can reach is already in the state.
	Begin func() any
}

// A Pass is one analyzer's view of one package under analysis.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's findings for the files.
	TypesInfo *types.Info
	// State is the per-run value produced by the analyzer's Begin hook
	// (nil when the analyzer has none). It is shared across every pass of
	// one RunAnalyzers invocation, never across invocations.
	State any

	diags []Diagnostic
}

// Report records a finding.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Reportf is Report anchored to a node.
func (p *Pass) Reportf(n ast.Node, format string, args ...any) {
	p.Report(n.Pos(), format, args...)
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// String renders "file:line:col: [analyzer] message" under fset.
func (d Diagnostic) String(fset *token.FileSet) string {
	return fmt.Sprintf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}

// directivePrefix introduces every lint directive comment.
const directivePrefix = "//lint:"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Pos
	file      string
	line      int
	analyzers []string
	reason    string
}

// matches reports whether the directive suppresses the given analyzer.
func (d *ignoreDirective) matches(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// Suppressions indexes //lint:ignore directives across a set of files so
// diagnostics anywhere in the loaded program can be matched against them.
type Suppressions struct {
	fset *token.FileSet
	// byLine maps file -> line -> directives governing that line.
	byLine map[string]map[int][]*ignoreDirective
	// malformed are directives with no reason (or no analyzer list);
	// they are reported as diagnostics of the pseudo-analyzer "lint".
	malformed []Diagnostic
}

// CollectSuppressions scans the comments of files for ignore directives. A
// directive governs its own line and the line directly below it, so both
// end-of-line and line-above placement work:
//
//	x := risky() //lint:ignore detrand seeded in TestMain
//
//	//lint:ignore wiresafe rebuilt lazily after decode
//	byName map[string]int
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{fset: fset, byLine: map[string]map[int][]*ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix+"ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      c.Pos(),
						Message:  "malformed //lint:ignore: need an analyzer list and a non-empty reason",
					})
					continue
				}
				d := &ignoreDirective{
					pos:       c.Pos(),
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
				}
				lines := s.byLine[d.file]
				if lines == nil {
					lines = map[int][]*ignoreDirective{}
					s.byLine[d.file] = lines
				}
				// Govern the directive's own line and the next one.
				lines[d.line] = append(lines[d.line], d)
				lines[d.line+1] = append(lines[d.line+1], d)
			}
		}
	}
	return s
}

// Suppressed reports whether d is covered by an ignore directive.
func (s *Suppressions) Suppressed(d Diagnostic) bool {
	pos := s.fset.Position(d.Pos)
	for _, dir := range s.byLine[pos.Filename][pos.Line] {
		if dir.matches(d.Analyzer) {
			return true
		}
	}
	return false
}

// Malformed returns diagnostics for directives missing their mandatory
// reason string.
func (s *Suppressions) Malformed() []Diagnostic { return s.malformed }

// fileHasDirective reports whether the file carries the given bare
// directive (e.g. "deterministic") in any of its comments.
func fileHasDirective(f *ast.File, name string) bool {
	want := directivePrefix + name
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if text == want || strings.HasPrefix(text, want+" ") {
				return true
			}
		}
	}
	return false
}

// commentHasDirective reports whether a specific comment group carries the
// directive — used for declaration-anchored directives like wireroot.
func commentHasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	want := directivePrefix + name
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// RunAnalyzers executes the analyzers over the packages and returns the
// surviving diagnostics: suppressed findings are dropped, malformed
// suppressions are added, and the result is sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersTimed(pkgs, analyzers)
	return diags, err
}

// A Timing records one analyzer's total wall-clock across all packages of
// one run; skalla-lint -timing prints them so an analyzer that regresses
// CI wall-clock is visible.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// RunAnalyzersTimed is RunAnalyzers plus per-analyzer wall-clock timings,
// returned in the analyzers' registration order.
func RunAnalyzersTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	if len(pkgs) == 0 {
		return nil, nil, fmt.Errorf("lint: no packages to analyze")
	}
	fset := pkgs[0].Fset
	var allFiles []*ast.File
	for _, p := range pkgs {
		allFiles = append(allFiles, p.Files...)
	}
	sup := CollectSuppressions(fset, allFiles)

	// Per-run analyzer state: Begin runs once per invocation, never shared
	// across invocations, so a testdata run cannot contaminate a module run.
	states := make(map[*Analyzer]any, len(analyzers))
	elapsed := make(map[*Analyzer]time.Duration, len(analyzers))
	for _, a := range analyzers {
		if a.Begin != nil {
			states[a] = a.Begin()
		}
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				State:     states[a],
			}
			start := time.Now()
			err := a.Run(pass)
			elapsed[a] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !sup.Suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	out = append(out, sup.Malformed()...)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	timings := make([]Timing, len(analyzers))
	for i, a := range analyzers {
		timings[i] = Timing{Name: a.Name, Elapsed: elapsed[a]}
	}
	return out, timings, nil
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{CtxFlow, WireSafe, DetRand, ErrFlow, LockGuard, LockOrder, GoLeak, VecShape}
}
