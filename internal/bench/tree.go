package bench

import (
	"fmt"

	"repro/internal/tpcr"
	"repro/skalla"
)

// TreePoint is one topology of the multi-tier experiment.
type TreePoint struct {
	Label  string
	Relays int
	M      Measure
}

// TreeResult compares a flat coordinator against spanning-tree topologies
// with relay tiers pre-merging sub-aggregates — the paper's future-work
// architecture (§6), evaluated here as an extension.
type TreeResult struct {
	Leaves int
	Points []TreePoint
}

// TreeExperiment runs the group reduction query over the same leaf data
// under a flat coordinator and under relay trees of decreasing fanout.
func TreeExperiment(cfg Config) (*TreeResult, error) {
	cfg = cfg.Defaults()
	leaves := cfg.Sites * 2 // trees get interesting past the flat width
	q := GroupReductionQuery(HighCard)
	opts := skalla.Options{GroupReduceSites: true}
	tc := cfg.tpcrConfig()

	out := &TreeResult{Leaves: leaves}
	measure := func(label string, relays int, cluster *skalla.Cluster) error {
		defer cluster.Close()
		if _, err := cluster.Generate("tpcr", "tpcr", tpcr.GenParams(tc)); err != nil {
			return fmt.Errorf("bench: tree %s: %w", label, err)
		}
		var best Measure
		for rep := 0; rep < cfg.Repeat; rep++ {
			res, err := cluster.Query(q, "tpcr", opts)
			if err != nil {
				return fmt.Errorf("bench: tree %s: %w", label, err)
			}
			s := res.Stats
			m := Measure{
				EvalTime: s.EvalTime(), SiteTime: s.SiteTime(),
				CoordTime: s.CoordTime(), CommTime: s.CommTime(),
				Bytes: s.Bytes(), Rounds: len(s.Rounds), ResultRows: res.Relation.Len(),
			}
			for _, r := range s.Rounds {
				m.Shipped += r.GroupsShipped
				m.Received += r.GroupsReceived
			}
			if rep == 0 || m.EvalTime < best.EvalTime {
				best = m
			}
		}
		out.Points = append(out.Points, TreePoint{Label: label, Relays: relays, M: best})
		return nil
	}

	flat, err := skalla.NewLocalCluster(skalla.ClusterConfig{Sites: leaves, Cost: cfg.Cost})
	if err != nil {
		return nil, err
	}
	if err := measure("flat", leaves, flat); err != nil {
		return nil, err
	}
	for _, fanout := range []int{2, 4, 8} {
		if fanout >= leaves {
			continue
		}
		tree, err := skalla.NewTreeCluster(skalla.TreeConfig{Leaves: leaves, Fanout: fanout, Cost: cfg.Cost})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("tree fanout=%d", fanout)
		if err := measure(label, (leaves+fanout-1)/fanout, tree); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String renders the comparison.
func (r *TreeResult) String() string {
	t := &table{
		title: fmt.Sprintf("Multi-tier extension: %d leaves, flat vs relay trees (root-link traffic)", r.Leaves),
		header: []string{
			"topology", "root peers", "time (ms)", "root KB", "grp→", "grp←",
		},
	}
	for _, p := range r.Points {
		t.add(p.Label, fmt.Sprint(p.Relays), ms(p.M.EvalTime), kb(p.M.Bytes),
			fmt.Sprint(p.M.Shipped), fmt.Sprint(p.M.Received))
	}
	return t.String()
}
