package bench

import (
	"fmt"
	"strings"

	"repro/skalla"
)

// Fig2Point is one site-count point of the group reduction experiment.
type Fig2Point struct {
	Sites int
	// None / SiteGR / CoordGR / BothGR toggle distribution-independent
	// (site-side) and distribution-aware (coordinator-side) group
	// reduction. The paper measured None vs SiteGR and predicted that
	// CoordGR makes the curves linear; both columns are produced here.
	None, SiteGR, CoordGR, BothGR Measure
	// C is the measured fraction of group aggregates a site updates per
	// grouping variable (the paper's c).
	C float64
	// PredictedRatio is (2c+2n+1)/(4n+1) — the paper's analytic model of
	// groups transferred with vs without site-side reduction.
	PredictedRatio float64
	// MeasuredRatio is the observed groups-transferred ratio.
	MeasuredRatio float64
}

// Fig2Result reproduces Fig. 2: evaluation time (left) and data
// transferred (right) for the group reduction query over 1..n sites.
type Fig2Result struct {
	Points []Fig2Point
}

// Fig2 runs the group reduction experiment on the high-cardinality
// partition attribute, as in the paper.
func (h *Harness) Fig2() (*Fig2Result, error) {
	q := GroupReductionQuery(HighCard)
	out := &Fig2Result{}
	for n := 1; n <= h.Config.Sites; n++ {
		p := Fig2Point{Sites: n}
		var err error
		if p.None, err = h.run(n, q, skalla.Options{}); err != nil {
			return nil, fmt.Errorf("bench: fig2 sites=%d none: %w", n, err)
		}
		if p.SiteGR, err = h.run(n, q, skalla.Options{GroupReduceSites: true}); err != nil {
			return nil, fmt.Errorf("bench: fig2 sites=%d siteGR: %w", n, err)
		}
		if p.CoordGR, err = h.run(n, q, skalla.Options{GroupReduceCoord: true}); err != nil {
			return nil, fmt.Errorf("bench: fig2 sites=%d coordGR: %w", n, err)
		}
		if p.BothGR, err = h.run(n, q, skalla.Options{GroupReduceSites: true, GroupReduceCoord: true}); err != nil {
			return nil, fmt.Errorf("bench: fig2 sites=%d bothGR: %w", n, err)
		}
		// Paper's model (§5.2): with G = ng total groups, the base round
		// moves G; each of the two MD rounds ships nG and returns nG
		// unreduced or cG reduced, where c is the fraction of all group
		// aggregates updated per grouping variable. Total reduced over
		// total unreduced is (2c+2n+1)/(4n+1).
		if G := float64(p.None.ResultRows); G > 0 {
			mdRounds := float64(p.None.Rounds - 1)
			mdRecvSite := float64(p.SiteGR.Received) - G // minus base round
			if mdRounds > 0 {
				p.C = mdRecvSite / (mdRounds * G)
			}
			nf := float64(n)
			p.PredictedRatio = (2*p.C + 2*nf + 1) / (4*nf + 1)
			p.MeasuredRatio = float64(p.SiteGR.Groups()) / float64(p.None.Groups())
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// String renders both panels of Fig. 2 plus the formula validation.
func (r *Fig2Result) String() string {
	t1 := &table{
		title:  "Fig 2 (left): group reduction query — evaluation time (ms)",
		header: []string{"sites", "no reduction", "site GR", "coord GR", "both"},
	}
	t2 := &table{
		title:  "Fig 2 (right): group reduction query — data transferred (KB)",
		header: []string{"sites", "no reduction", "site GR", "coord GR", "both"},
	}
	t3 := &table{
		title:  "Fig 2 formula check: groups ratio site-GR/none vs (2c+2n+1)/(4n+1)",
		header: []string{"sites", "c", "predicted", "measured", "err%"},
	}
	for _, p := range r.Points {
		t1.add(fmt.Sprint(p.Sites), ms(p.None.EvalTime), ms(p.SiteGR.EvalTime),
			ms(p.CoordGR.EvalTime), ms(p.BothGR.EvalTime))
		t2.add(fmt.Sprint(p.Sites), kb(p.None.Bytes), kb(p.SiteGR.Bytes),
			kb(p.CoordGR.Bytes), kb(p.BothGR.Bytes))
		errPct := 0.0
		if p.PredictedRatio > 0 {
			errPct = 100 * (p.MeasuredRatio - p.PredictedRatio) / p.PredictedRatio
		}
		t3.add(fmt.Sprint(p.Sites), fmt.Sprintf("%.3f", p.C),
			fmt.Sprintf("%.3f", p.PredictedRatio), fmt.Sprintf("%.3f", p.MeasuredRatio),
			fmt.Sprintf("%+.1f", errPct))
	}
	return t1.String() + "\n" + t2.String() + "\n" + t3.String()
}

// FigPoint is one (sites, off, on) measurement of a two-variant sweep.
type FigPoint struct {
	Sites   int
	Off, On Measure
}

// SweepResult is a two-variant speed-up sweep at one grouping cardinality.
type SweepResult struct {
	Title    string
	OffLabel string
	OnLabel  string
	Points   []FigPoint
}

// String renders time and bytes panels for the sweep.
func (r *SweepResult) String() string {
	t1 := &table{
		title:  r.Title + " — evaluation time (ms)",
		header: []string{"sites", r.OffLabel, r.OnLabel},
	}
	t2 := &table{
		title:  r.Title + " — data transferred (KB)",
		header: []string{"sites", r.OffLabel, r.OnLabel},
	}
	for _, p := range r.Points {
		t1.add(fmt.Sprint(p.Sites), ms(p.Off.EvalTime), ms(p.On.EvalTime))
		t2.add(fmt.Sprint(p.Sites), kb(p.Off.Bytes), kb(p.On.Bytes))
	}
	return t1.String() + "\n" + t2.String()
}

// sweep runs a two-variant speed-up experiment.
func (h *Harness) sweep(title string, q skalla.Query, offLabel string, off skalla.Options, onLabel string, on skalla.Options) (*SweepResult, error) {
	out := &SweepResult{Title: title, OffLabel: offLabel, OnLabel: onLabel}
	for n := 1; n <= h.Config.Sites; n++ {
		p := FigPoint{Sites: n}
		var err error
		if p.Off, err = h.run(n, q, off); err != nil {
			return nil, fmt.Errorf("bench: %s sites=%d %s: %w", title, n, offLabel, err)
		}
		if p.On, err = h.run(n, q, on); err != nil {
			return nil, fmt.Errorf("bench: %s sites=%d %s: %w", title, n, onLabel, err)
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// Fig3 reproduces the coalescing experiment: high cardinality (left
// panel) and low cardinality (right panel).
func (h *Harness) Fig3() (high, low *SweepResult, err error) {
	high, err = h.sweep("Fig 3 (left): coalescing, high cardinality",
		CoalescingQuery(HighCard), "non-coalesced", skalla.Options{},
		"coalesced", skalla.Options{Coalesce: true})
	if err != nil {
		return nil, nil, err
	}
	low, err = h.sweep("Fig 3 (right): coalescing, low cardinality",
		CoalescingQuery(LowCard), "non-coalesced", skalla.Options{},
		"coalesced", skalla.Options{Coalesce: true})
	if err != nil {
		return nil, nil, err
	}
	return high, low, nil
}

// Fig4 reproduces the synchronization reduction (without coalescing)
// experiment on both cardinalities.
func (h *Harness) Fig4() (high, low *SweepResult, err error) {
	high, err = h.sweep("Fig 4 (left): sync reduction, high cardinality",
		GroupReductionQuery(HighCard), "no sync reduction", skalla.Options{},
		"sync reduction", skalla.Options{SyncReduce: true})
	if err != nil {
		return nil, nil, err
	}
	low, err = h.sweep("Fig 4 (right): sync reduction, low cardinality",
		GroupReductionQuery(LowCard), "no sync reduction", skalla.Options{},
		"sync reduction", skalla.Options{SyncReduce: true})
	if err != nil {
		return nil, nil, err
	}
	return high, low, nil
}

// Fig5Point is one scale factor of the scale-up experiment.
type Fig5Point struct {
	Scale int
	Rows  int
	Unopt Measure // no reductions
	Opt   Measure // all reductions
}

// Fig5Result reproduces Fig. 5: scale-up on four sites with the combined
// reductions query, data size ×1..×4.
type Fig5Result struct {
	ConstGroups bool
	Points      []Fig5Point
}

// Fig5 runs the scale-up experiment. With constGroups false the group
// count grows linearly with the data (the paper's first variant);
// with constGroups true it stays fixed (the second variant, §5.3).
// The harness dataset is regenerated; call Reset to restore it.
func (h *Harness) Fig5(constGroups bool) (*Fig5Result, error) {
	const sites = 4
	if h.Config.Sites < sites {
		return nil, fmt.Errorf("bench: fig5 needs at least %d sites", sites)
	}
	q := CombinedQuery(HighCard)
	out := &Fig5Result{ConstGroups: constGroups}
	baseRows := h.Config.Rows / 2
	baseCust := h.Config.Customers / 2
	for scale := 1; scale <= 4; scale++ {
		tc := h.Config.tpcrConfig()
		tc.Rows = baseRows * scale
		tc.Customers = baseCust
		if !constGroups {
			tc.Customers = baseCust * scale
		}
		if err := h.regenerate(sites, tc); err != nil {
			return nil, fmt.Errorf("bench: fig5 scale %d: %w", scale, err)
		}
		p := Fig5Point{Scale: scale, Rows: tc.Rows}
		var err error
		if p.Unopt, err = h.run(sites, q, skalla.Options{}); err != nil {
			return nil, fmt.Errorf("bench: fig5 scale %d unopt: %w", scale, err)
		}
		if p.Opt, err = h.run(sites, q, skalla.AllOptimizations); err != nil {
			return nil, fmt.Errorf("bench: fig5 scale %d opt: %w", scale, err)
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// Reset restores the harness's default dataset (after Fig5 rescaling).
func (h *Harness) Reset() error {
	return h.regenerate(h.Config.Sites, h.Config.tpcrConfig())
}

// String renders the scale-up panel and the optimized-run breakdown.
func (r *Fig5Result) String() string {
	variant := "groups grow with data"
	if r.ConstGroups {
		variant = "constant group count"
	}
	t1 := &table{
		title:  "Fig 5 (left): combined reductions scale-up (" + variant + ") — evaluation time (ms)",
		header: []string{"scale", "rows", "no reductions", "all reductions"},
	}
	t2 := &table{
		title:  "Fig 5 (right): optimized run breakdown (ms)",
		header: []string{"scale", "site", "coordinator", "communication"},
	}
	for _, p := range r.Points {
		t1.add(fmt.Sprint(p.Scale), fmt.Sprint(p.Rows), ms(p.Unopt.EvalTime), ms(p.Opt.EvalTime))
		t2.add(fmt.Sprint(p.Scale), ms(p.Opt.SiteTime), ms(p.Opt.CoordTime), ms(p.Opt.CommTime))
	}
	return t1.String() + "\n" + t2.String()
}

// AblationRow measures one optimization configuration on a query.
type AblationRow struct {
	Label string
	M     Measure
}

// Ablation runs the combined query on all sites once per optimization
// configuration: none, each optimization alone, and all together. This
// extends the paper's evaluation with a per-optimization attribution.
func (h *Harness) Ablation() ([]AblationRow, error) {
	q := CombinedQuery(HighCard)
	configs := []struct {
		label string
		opts  skalla.Options
	}{
		{"none", skalla.Options{}},
		{"coalesce", skalla.Options{Coalesce: true}},
		{"group-reduce-sites", skalla.Options{GroupReduceSites: true}},
		{"group-reduce-coord", skalla.Options{GroupReduceCoord: true}},
		{"sync-reduce", skalla.Options{SyncReduce: true}},
		{"all", skalla.AllOptimizations},
	}
	var out []AblationRow
	for _, c := range configs {
		m, err := h.run(h.Config.Sites, q, c.opts)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", c.label, err)
		}
		out = append(out, AblationRow{Label: c.label, M: m})
	}
	return out, nil
}

// FormatAblation renders the ablation rows.
func FormatAblation(rows []AblationRow) string {
	t := &table{
		title:  "Ablation: combined query, each optimization alone (8 sites)",
		header: []string{"config", "rounds", "time (ms)", "bytes (KB)", "groups moved"},
	}
	for _, r := range rows {
		t.add(r.Label, fmt.Sprint(r.M.Rounds), ms(r.M.EvalTime), kb(r.M.Bytes), fmt.Sprint(r.M.Groups()))
	}
	return t.String()
}

// RunAll executes every experiment and returns the full report. For the
// machine-readable variant see RunAllResults.
func (h *Harness) RunAll() (string, error) {
	return h.runAll(nil)
}

// runAll executes every experiment, rendering the report and — when res
// is non-nil — folding every figure's metrics into it.
func (h *Harness) runAll(res Results) (string, error) {
	collect := func(r Results) {
		if res != nil {
			res.Merge(r)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Skalla experimental evaluation — %d sites, %d rows, %d/%d high/low-card groups\n\n",
		h.Config.Sites, h.Config.Rows, h.Config.Customers, h.Config.LowCardGroups)

	fig2, err := h.Fig2()
	if err != nil {
		return "", err
	}
	b.WriteString(fig2.String() + "\n")
	collect(fig2.Metrics())

	f3h, f3l, err := h.Fig3()
	if err != nil {
		return "", err
	}
	b.WriteString(f3h.String() + "\n" + f3l.String() + "\n")
	collect(f3h.Metrics("fig3_high"))
	collect(f3l.Metrics("fig3_low"))

	f4h, f4l, err := h.Fig4()
	if err != nil {
		return "", err
	}
	b.WriteString(f4h.String() + "\n" + f4l.String() + "\n")
	collect(f4h.Metrics("fig4_high"))
	collect(f4l.Metrics("fig4_low"))

	f5, err := h.Fig5(false)
	if err != nil {
		return "", err
	}
	b.WriteString(f5.String() + "\n")
	collect(f5.Metrics())
	f5c, err := h.Fig5(true)
	if err != nil {
		return "", err
	}
	b.WriteString(f5c.String() + "\n")
	collect(f5c.Metrics())
	if err := h.Reset(); err != nil {
		return "", err
	}

	abl, err := h.Ablation()
	if err != nil {
		return "", err
	}
	b.WriteString(FormatAblation(abl) + "\n")
	collect(AblationMetrics(abl))

	tree, err := TreeExperiment(h.Config)
	if err != nil {
		return "", err
	}
	b.WriteString("\n" + tree.String())
	collect(tree.Metrics())
	return b.String(), nil
}
