// Package bench implements the paper's experimental evaluation (Section
// 5): speed-up experiments over 1..8 participating sites for the group
// reduction, coalescing, and synchronization reduction queries (Figs.
// 2-4), and the scale-up experiment with combined reductions (Fig. 5).
//
// The harness reproduces the paper's setup: a TPC-R-derived denormalized
// relation partitioned on NationKey across eight sites; every test query
// computes a COUNT and an AVG per GMDJ operator; the high-cardinality
// grouping attribute is CustName and the low-cardinality one is CustGroup
// (2000 values; both are partition attributes via functional
// dependencies). Query evaluation time is modeled as the paper measures
// it: per-round max site computation + coordinator computation + modeled
// communication time over a configurable link.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/tpcr"
	"repro/internal/transport"
	"repro/skalla"
)

// Config parameterizes the harness. Zero fields take scaled-down defaults
// so the full suite runs in seconds; raise Rows/Customers toward the
// paper's 6 M rows / 100 k customers for a full-scale run.
type Config struct {
	// Sites is the number of warehouse sites (paper: 8).
	Sites int
	// Rows is the total TPCR rows across all sites.
	Rows int
	// Customers is the high-cardinality group count (paper: 100,000).
	Customers int
	// LowCardGroups is the low-cardinality group count (paper: 2000-4000).
	LowCardGroups int
	// Seed drives data generation.
	Seed int64
	// Cost models the coordinator↔site links; zero defaults to the
	// paper-era WAN model (10 Mbit/s, 2 ms).
	Cost transport.CostModel
	// Repeat runs each measurement this many times and keeps the one
	// with the lowest evaluation time, smoothing scheduler noise out of
	// the reported curves. Default 1.
	Repeat int
	// RowEngine forces the sites onto the row-at-a-time reference
	// engine instead of the vectorized default (the -row-engine escape
	// hatch of the daemons); the vec experiment compares the two.
	RowEngine bool
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Sites == 0 {
		c.Sites = 8
	}
	if c.Rows == 0 {
		c.Rows = 48000
	}
	if c.Customers == 0 {
		c.Customers = 4000
	}
	if c.LowCardGroups == 0 {
		c.LowCardGroups = 2000
	}
	if c.Cost == (transport.CostModel{}) {
		c.Cost = transport.DefaultWAN
	}
	if c.Repeat == 0 {
		c.Repeat = 1
	}
	return c
}

// HighCard and LowCard name the two grouping attributes of the
// experiments.
const (
	HighCard = "CustName"
	LowCard  = "CustGroup"
)

// Harness is a running experimental cluster with TPCR data loaded.
type Harness struct {
	Config  Config
	Cluster *skalla.Cluster
}

// tpcrConfig maps the harness config onto the generator. CustGroup
// cardinality is CustKey % LowCardGroups, which requires LowCardGroups to
// be a multiple of the nation count to preserve the partition FD; the
// Defaults (2000, 25) satisfy this.
func (c Config) tpcrConfig() tpcr.Config {
	return tpcr.Config{
		Rows:          c.Rows,
		Customers:     c.Customers,
		LowCardGroups: c.LowCardGroups,
		Seed:          c.Seed,
	}
}

// NewHarness starts an in-process cluster of cfg.Sites sites, generates
// each site's TPCR partition locally, and fills the catalog with the
// partitioning knowledge.
func NewHarness(cfg Config) (*Harness, error) {
	cfg = cfg.Defaults()
	cluster, err := skalla.NewLocalCluster(skalla.ClusterConfig{
		Sites: cfg.Sites, Cost: cfg.Cost, RowEngine: cfg.RowEngine,
	})
	if err != nil {
		return nil, err
	}
	h := &Harness{Config: cfg, Cluster: cluster}
	if err := h.regenerate(cfg.Sites, cfg.tpcrConfig()); err != nil {
		cluster.Close()
		return nil, err
	}
	return h, nil
}

// regenerate rebuilds the dataset (used by the scale-up experiment).
func (h *Harness) regenerate(sites int, tc tpcr.Config) error {
	sub, err := h.Cluster.Subset(sites)
	if err != nil {
		return err
	}
	if _, err := sub.Generate("tpcr", "tpcr", tpcr.GenParams(tc)); err != nil {
		return err
	}
	if err := tpcr.FillCatalog(h.Cluster.Catalog(), sub.SiteIDs(), tc); err != nil {
		return err
	}
	// Value-level distribution knowledge (§4.1) enables the
	// coordinator-side group reduction columns of the experiments.
	return tpcr.FillValueDomains(h.Cluster.Catalog(), sub.SiteIDs(), tc)
}

// Close shuts the cluster down.
func (h *Harness) Close() error { return h.Cluster.Close() }

// Measure summarizes one query execution.
type Measure struct {
	EvalTime   time.Duration
	SiteTime   time.Duration
	CoordTime  time.Duration
	CommTime   time.Duration
	Bytes      int64
	Shipped    int64 // base-result rows sent to sites
	Received   int64 // sub-result rows returned by sites
	Rounds     int
	ResultRows int
}

// Groups returns base-result rows shipped either way.
func (m Measure) Groups() int64 { return m.Shipped + m.Received }

// run executes the query on the first n sites under the given options,
// keeping the fastest of Config.Repeat repetitions.
func (h *Harness) run(n int, q skalla.Query, opts skalla.Options) (Measure, error) {
	best, err := h.runOnce(n, q, opts)
	if err != nil {
		return Measure{}, err
	}
	for i := 1; i < h.Config.Repeat; i++ {
		m, err := h.runOnce(n, q, opts)
		if err != nil {
			return Measure{}, err
		}
		if m.EvalTime < best.EvalTime {
			best = m
		}
	}
	return best, nil
}

func (h *Harness) runOnce(n int, q skalla.Query, opts skalla.Options) (Measure, error) {
	sub, err := h.Cluster.Subset(n)
	if err != nil {
		return Measure{}, err
	}
	res, err := sub.Query(q, "tpcr", opts)
	if err != nil {
		return Measure{}, err
	}
	s := res.Stats
	m := Measure{
		EvalTime:   s.EvalTime(),
		SiteTime:   s.SiteTime(),
		CoordTime:  s.CoordTime(),
		CommTime:   s.CommTime(),
		Bytes:      s.Bytes(),
		Rounds:     len(s.Rounds),
		ResultRows: res.Relation.Len(),
	}
	for _, r := range s.Rounds {
		m.Shipped += r.GroupsShipped
		m.Received += r.GroupsReceived
	}
	return m, nil
}

// The experiment queries. Every GMDJ computes a COUNT and an AVG, as in
// the paper's setup.

// GroupReductionQuery is the Fig. 2 / Fig. 4 query: two correlated GMDJs
// grouped on attr (the second condition references the first MD's AVG, so
// the MDs cannot coalesce and evaluation is inherently multi-round
// without synchronization reduction).
func GroupReductionQuery(attr string) skalla.Query {
	eq := fmt.Sprintf("F.%s = B.%s", attr, attr)
	return skalla.NewQuery(attr).
		MD(skalla.Aggs("count(*) AS cnt1", "avg(F.Quantity) AS avg1"), eq).
		MD(skalla.Aggs("count(*) AS cnt2", "avg(F.ExtendedPrice) AS avg2"),
			eq+" AND F.Quantity >= B.avg1").
		MustBuild()
}

// CoalescingQuery is the Fig. 3 query: two GMDJs on attr whose second
// condition is independent of the first's outputs, so they coalesce into
// a single operator.
func CoalescingQuery(attr string) skalla.Query {
	eq := fmt.Sprintf("F.%s = B.%s", attr, attr)
	return skalla.NewQuery(attr).
		MD(skalla.Aggs("count(*) AS cnt1", "avg(F.Quantity) AS avg1"), eq).
		MD(skalla.Aggs("count(*) AS cnt2", "avg(F.ExtendedPrice) AS avg2"),
			eq+" AND F.Discount > 0.05").
		MustBuild()
}

// CombinedQuery is the Fig. 5 query: three GMDJs exercising every
// optimization at once — MD1/MD2 coalesce, MD3 correlates with MD1's
// average, and all conditions carry the partition-attribute equality so
// synchronization reduction applies.
func CombinedQuery(attr string) skalla.Query {
	eq := fmt.Sprintf("F.%s = B.%s", attr, attr)
	return skalla.NewQuery(attr).
		MD(skalla.Aggs("count(*) AS cnt1", "avg(F.Quantity) AS avg1"), eq).
		MD(skalla.Aggs("count(*) AS cnt2", "avg(F.Discount) AS avg2"),
			eq+" AND F.Discount > 0.05").
		MD(skalla.Aggs("count(*) AS cnt3", "avg(F.ExtendedPrice) AS avg3"),
			eq+" AND F.Quantity >= B.avg1").
		MustBuild()
}

// table renders aligned experiment output.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.title)
	for i, h := range t.header {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", width[i], h)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

func kb(n int64) string {
	return fmt.Sprintf("%.1f", float64(n)/1024)
}

// RunQuery executes one measured query on the first n sites — the unit
// the per-figure benchmarks in the repository root are built from.
func (h *Harness) RunQuery(n int, q skalla.Query, opts skalla.Options) (Measure, error) {
	return h.run(n, q, opts)
}
