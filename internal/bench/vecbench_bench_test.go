package bench

import (
	"testing"

	"repro/internal/gmdj"
	"repro/internal/relation"
	"repro/internal/tpcr"
	"repro/internal/vec"
)

// The kernel-chain benchmarks pit the two engines against each other on
// the Fig. 2 shape at full dataset scale — the profiling targets behind
// the vec experiment's speedup numbers.

func chainSetup(b *testing.B) (base, detail *relation.Relation, md1, md2 gmdj.MD) {
	b.Helper()
	cfg := Config{Rows: 48000, Customers: 4000, LowCardGroups: 2000, Seed: 1}.Defaults()
	detail = tpcr.Generate(cfg.tpcrConfig())
	base, err := gmdj.EvalBase(detail, gmdj.BaseDef{Cols: []string{HighCard}})
	if err != nil {
		b.Fatal(err)
	}
	md1, md2 = vecKernelMDs(HighCard)
	return base, detail, md1, md2
}

func BenchmarkChainRow(b *testing.B) {
	base, detail, md1, md2 := chainSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vecChain(base, detail, md1, md2, gmdj.SubOpts{Engine: gmdj.EngineRow}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainVec(b *testing.B) {
	base, detail, md1, md2 := chainSetup(b)
	batch, err := vec.FromRelation(detail)
	if err != nil {
		b.Fatal(err)
	}
	opts := gmdj.SubOpts{Engine: gmdj.EngineVector, Workers: 1, DetailBatch: batch}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vecChain(base, detail, md1, md2, opts); err != nil {
			b.Fatal(err)
		}
	}
}
