package bench

// This file is the tail-tolerance experiment behind `skalla-bench
// -experiment tail`: the same query repeated over a cluster whose site
// transports are chaos-injected with seeded heavy-tail latency, once
// without and once with hedging against a clean replica. Hedging must
// cut the p99 round latency without changing a single result byte —
// duplicated round evaluation is idempotent — and every hedge must fit
// inside the shared retry budget.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/site"
	"repro/internal/tpcr"
	"repro/internal/transport"
)

// TailConfig parameterizes the tail-tolerance experiment.
type TailConfig struct {
	// Sites, Rows, Customers, Seed shape the TPCR dataset (defaults:
	// 4 sites, 8000 rows, 400 customers, seed 1).
	Sites     int
	Rows      int
	Customers int
	Seed      int64
	// Queries is how many times the experiment query is executed per
	// variant (default 40); latency percentiles come from these runs.
	Queries int
	// TailP is the per-call probability that a site call straggles
	// (default 0.12); TailDelay is the injected straggler latency
	// (default 50ms). Both variants replay the identical seeded fault
	// sequence, so hedged and unhedged runs face the same stragglers.
	TailP     float64
	TailDelay time.Duration
	// HedgeDelay is the fixed hedge trigger (default 5ms): a primary
	// call that has not answered after this long races the replica.
	HedgeDelay time.Duration
	// BudgetRatio / BudgetBurst bound speculative sends: hedges spend
	// retry tokens earned at BudgetRatio per primary call, capped at
	// BudgetBurst (defaults 0.5 / 20).
	BudgetRatio float64
	BudgetBurst int
}

func (c TailConfig) defaults() TailConfig {
	if c.Sites == 0 {
		c.Sites = 4
	}
	if c.Rows == 0 {
		c.Rows = 8000
	}
	if c.Customers == 0 {
		c.Customers = 400
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Queries == 0 {
		c.Queries = 40
	}
	if c.TailP == 0 {
		c.TailP = 0.12
	}
	if c.TailDelay == 0 {
		c.TailDelay = 50 * time.Millisecond
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 5 * time.Millisecond
	}
	if c.BudgetRatio == 0 {
		c.BudgetRatio = 0.5
	}
	if c.BudgetBurst == 0 {
		c.BudgetBurst = 20
	}
	return c
}

// TailResult summarizes the two variants of one run.
type TailResult struct {
	Config TailConfig
	// UnhedgedP50/P99 and HedgedP50/P99 are per-query wall-latency
	// quantiles over Config.Queries executions of each variant.
	UnhedgedP50 time.Duration
	UnhedgedP99 time.Duration
	HedgedP50   time.Duration
	HedgedP99   time.Duration
	// Hedges / HedgeWins count speculative launches and the ones whose
	// duplicate answered first; BudgetDenied counts hedge attempts the
	// retry budget refused.
	Hedges       int64
	HedgeWins    int64
	BudgetDenied int64
}

// P99Speedup is the headline number: how many times faster the p99
// query latency is with hedging on.
func (r *TailResult) P99Speedup() float64 {
	if r.HedgedP99 <= 0 {
		return 0
	}
	return float64(r.UnhedgedP99) / float64(r.HedgedP99)
}

// String renders the run the way the figure tables do.
func (r *TailResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tail tolerance (hedged replica requests): %d sites, %d queries, straggler p=%.2f delay=%s, hedge after %s\n",
		r.Config.Sites, r.Config.Queries, r.Config.TailP, r.Config.TailDelay, r.Config.HedgeDelay)
	t := &table{
		title:  "tail latency",
		header: []string{"variant", "p50", "p99"},
	}
	t.add("hedging off", r.UnhedgedP50.Round(time.Microsecond).String(), r.UnhedgedP99.Round(time.Microsecond).String())
	t.add("hedging on", r.HedgedP50.Round(time.Microsecond).String(), r.HedgedP99.Round(time.Microsecond).String())
	b.WriteString(t.String())
	fmt.Fprintf(&b, "p99 speedup %.2fx; %d hedges (%d won the race, %d denied by the retry budget); results byte-identical\n",
		r.P99Speedup(), r.Hedges, r.HedgeWins, r.BudgetDenied)
	return b.String()
}

// Metrics flattens the run into the benchmark artifact.
func (r *TailResult) Metrics() Results {
	return Results{"tail": {
		"queries":         float64(r.Config.Queries),
		"unhedged_p50_ms": msF(r.UnhedgedP50),
		"unhedged_p99_ms": msF(r.UnhedgedP99),
		"hedged_p50_ms":   msF(r.HedgedP50),
		"hedged_p99_ms":   msF(r.HedgedP99),
		"p99_speedup":     r.P99Speedup(),
		"hedges":          float64(r.Hedges),
		"hedge_wins":      float64(r.HedgeWins),
		"budget_denied":   float64(r.BudgetDenied),
	}}
}

// tailSite is one logical site's loaded engine: the chaos-injected
// primary transport and a clean replica both answer from it, matching a
// replicated deployment where only one replica is slow.
type tailSite struct {
	id  string
	eng *site.Engine
}

// tailCluster builds the shared dataset once: one engine per logical
// site holding its TPCR partition, plus the partitioning catalog.
func tailCluster(cfg TailConfig) ([]tailSite, *catalog.Catalog, error) {
	tc := tpcr.Config{Rows: cfg.Rows, Customers: cfg.Customers, Seed: cfg.Seed}
	sites := make([]tailSite, cfg.Sites)
	ids := make([]string, cfg.Sites)
	for i := range sites {
		id := fmt.Sprintf("site%d", i)
		part, err := tpcr.GeneratePartition(tc, i, cfg.Sites)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: tail partition %d: %w", i, err)
		}
		eng := site.NewEngine(id)
		eng.Load("tpcr", part)
		sites[i] = tailSite{id: id, eng: eng}
		ids[i] = id
	}
	cat := catalog.New(ids...)
	if err := tpcr.FillCatalog(cat, ids, tc); err != nil {
		return nil, nil, fmt.Errorf("bench: tail catalog: %w", err)
	}
	return sites, cat, nil
}

// stragglingClient wraps one site in seeded heavy-tail chaos. Seeding by
// site index makes the fault sequence identical across variants.
func stragglingClient(cfg TailConfig, s tailSite, idx int) *transport.Chaos {
	ch := transport.NewChaos(transport.NewLocalClient(s.id, s.eng, transport.CostModel{}), cfg.Seed+int64(idx))
	ch.SetTailLatency(cfg.Seed+int64(idx), cfg.TailP, cfg.TailDelay)
	return ch
}

// tailMeasure executes the experiment query cfg.Queries times over the
// given clients and returns the sorted per-query wall latencies plus the
// final relation (identical across iterations for a fixed dataset).
func tailMeasure(cfg TailConfig, clients []transport.Client, cat *catalog.Catalog) ([]time.Duration, *relation.Relation, error) {
	coord := core.NewCoordinator(clients...)
	q := GroupReductionQuery(HighCard)
	ctx := context.Background()
	rel, _, plan, err := coord.Run(ctx, q, "tpcr", core.Egil{Catalog: cat, Options: core.DefaultOptions})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: tail plan: %w", err)
	}
	base := sortedRows(rel)
	latencies := make([]time.Duration, 0, cfg.Queries)
	for i := 0; i < cfg.Queries; i++ {
		start := time.Now()
		r, _, err := coord.Execute(ctx, plan)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: tail query %d: %w", i, err)
		}
		latencies = append(latencies, time.Since(start))
		if d := rowsDiff(base, sortedRows(r)); d != "" {
			return nil, nil, fmt.Errorf("bench: tail query %d diverged from baseline: %s", i, d)
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return latencies, rel, nil
}

// TailExperiment runs the workload twice over identical data and
// identical seeded stragglers — hedging off, then hedging on against a
// clean replica of each site — and reports the latency quantiles, the
// hedge/budget accounting, and an error if any result byte differs.
func TailExperiment(cfg TailConfig) (*TailResult, error) {
	cfg = cfg.defaults()
	sites, cat, err := tailCluster(cfg)
	if err != nil {
		return nil, err
	}

	// Variant 1: hedging off. Every call rides out the injected tail.
	unhedged := make([]transport.Client, len(sites))
	for i, s := range sites {
		unhedged[i] = stragglingClient(cfg, s, i)
	}
	baseLat, baseRel, err := tailMeasure(cfg, unhedged, cat)
	if err != nil {
		return nil, err
	}

	// Variant 2: hedging on. The primary replays the same seeded fault
	// sequence; a clean replica of the same partition answers hedges.
	budget := transport.NewRetryBudget(cfg.BudgetRatio, cfg.BudgetBurst)
	hedgers := make([]*transport.Hedger, len(sites))
	hedged := make([]transport.Client, len(sites))
	for i, s := range sites {
		replica := transport.NewLocalClient(s.id, s.eng, transport.CostModel{})
		hedgers[i] = transport.NewHedger(s.id, []transport.Client{stragglingClient(cfg, s, i), replica},
			transport.HedgeConfig{Delay: cfg.HedgeDelay, Budget: budget})
		hedged[i] = hedgers[i]
	}
	hedgedLat, hedgedRel, err := tailMeasure(cfg, hedged, cat)
	for _, h := range hedgers {
		h.Close() // waits out any losing hedge goroutines
	}
	if err != nil {
		return nil, err
	}
	if d := rowsDiff(sortedRows(baseRel), sortedRows(hedgedRel)); d != "" {
		return nil, fmt.Errorf("bench: hedged results diverge from unhedged baseline: %s", d)
	}

	res := &TailResult{
		Config:      cfg,
		UnhedgedP50: percentile(baseLat, 50),
		UnhedgedP99: percentile(baseLat, 99),
		HedgedP50:   percentile(hedgedLat, 50),
		HedgedP99:   percentile(hedgedLat, 99),
	}
	for _, h := range hedgers {
		hs, ws := h.HedgeCounts()
		res.Hedges += hs
		res.HedgeWins += ws
	}
	_, res.BudgetDenied = budget.Counts()
	return res, nil
}
