package bench

// The vectorized-engine experiment: the same GMDJ work measured twice,
// once on the row-at-a-time reference engine and once on the columnar
// engine of internal/vec. The kernel half times the Fig. 2 / Fig. 4
// operator chain directly at the gmdj.EvalSub level (no cluster, no
// modeled network) so the engine speedup is visible in isolation; the
// cluster half runs the combined query end to end at each optimization
// level O0-O3 on two otherwise-identical clusters, one forced onto the
// row engine via ClusterConfig.RowEngine. Both halves assert the two
// engines produce bit-identical results before any timing is reported.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/gmdj"
	"repro/internal/relation"
	"repro/internal/tpcr"
	"repro/internal/value"
	"repro/internal/vec"
	"repro/skalla"
)

// VecKernelPoint is one kernel-level measurement: the two-operator group
// reduction chain over the full dataset, single process.
type VecKernelPoint struct {
	Label  string // "fig2_high" / "fig4_low"
	Rows   int    // detail rows
	Groups int    // base-values rows
	Row    time.Duration
	Vec1   time.Duration // vectorized, one worker
	Vec    time.Duration // vectorized, GOMAXPROCS workers
}

// Speedup is row time over vectorized-parallel time — the factor the
// default site configuration gains over the reference engine.
func (p VecKernelPoint) Speedup() float64 {
	if p.Vec <= 0 {
		return 0
	}
	return float64(p.Row) / float64(p.Vec)
}

// VecLevelPoint is one end-to-end measurement pair: the combined query
// at one optimization level, row engine vs vectorized engine.
type VecLevelPoint struct {
	Level string // O0..O3
	Row   Measure
	Vec   Measure
}

// Speedup is row evaluation time over vectorized evaluation time.
func (p VecLevelPoint) Speedup() float64 {
	if p.Vec.EvalTime <= 0 {
		return 0
	}
	return float64(p.Row.EvalTime) / float64(p.Vec.EvalTime)
}

// VecResult is the full row-vs-vectorized comparison.
type VecResult struct {
	Workers int // GOMAXPROCS at measurement time
	Sites   int
	Kernel  []VecKernelPoint
	Levels  []VecLevelPoint
}

// BestKernelSpeedup returns the largest kernel-level speedup — the
// regression-guard quantity (vec slower than row on every shape means
// the vectorized default lost its reason to exist).
func (r *VecResult) BestKernelSpeedup() float64 {
	best := 0.0
	for _, p := range r.Kernel {
		if s := p.Speedup(); s > best {
			best = s
		}
	}
	return best
}

// vecLevels is the cumulative optimization ladder: O0 nothing, O1
// coalescing, O2 adds both group reductions, O3 adds synchronization
// reduction (everything).
var vecLevels = []struct {
	Level string
	Opts  skalla.Options
}{
	{"O0", skalla.Options{}},
	{"O1", skalla.Options{Coalesce: true}},
	{"O2", skalla.Options{Coalesce: true, GroupReduceSites: true, GroupReduceCoord: true}},
	{"O3", skalla.AllOptimizations},
}

// VecExperiment measures the vectorized engine against the row engine at
// both levels. The kernel half uses the full (unpartitioned) dataset;
// the cluster half runs cfg.Sites sites per engine.
func VecExperiment(cfg Config) (*VecResult, error) {
	cfg = cfg.Defaults()
	res := &VecResult{Workers: runtime.GOMAXPROCS(0), Sites: cfg.Sites}

	detail := tpcr.Generate(cfg.tpcrConfig())
	for _, k := range []struct{ label, attr string }{
		{"fig2_high", HighCard},
		{"fig4_low", LowCard},
	} {
		p, err := vecKernelPoint(k.label, detail, k.attr, cfg.Repeat, res.Workers)
		if err != nil {
			return nil, fmt.Errorf("bench: vec kernel %s: %w", k.label, err)
		}
		res.Kernel = append(res.Kernel, p)
	}

	rowCfg := cfg
	rowCfg.RowEngine = true
	rowH, err := NewHarness(rowCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: vec row-engine cluster: %w", err)
	}
	defer rowH.Close()
	vecCfg := cfg
	vecCfg.RowEngine = false
	vecH, err := NewHarness(vecCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: vec cluster: %w", err)
	}
	defer vecH.Close()

	q := CombinedQuery(HighCard)
	if err := vecEnginesAgree(rowH, vecH, q, cfg.Sites); err != nil {
		return nil, err
	}
	for _, lv := range vecLevels {
		rm, err := rowH.run(cfg.Sites, q, lv.Opts)
		if err != nil {
			return nil, fmt.Errorf("bench: vec %s row engine: %w", lv.Level, err)
		}
		vm, err := vecH.run(cfg.Sites, q, lv.Opts)
		if err != nil {
			return nil, fmt.Errorf("bench: vec %s: %w", lv.Level, err)
		}
		res.Levels = append(res.Levels, VecLevelPoint{Level: lv.Level, Row: rm, Vec: vm})
	}
	return res, nil
}

// vecKernelMDs builds the Fig. 2 / Fig. 4 operator chain grouped on
// attr: MD1 computes COUNT and AVG per group, MD2 correlates with MD1's
// average, so the chain cannot coalesce and both the equi-probe and the
// residual-comparison kernels are exercised.
func vecKernelMDs(attr string) (gmdj.MD, gmdj.MD) {
	eq := fmt.Sprintf("F.%s = B.%s", attr, attr)
	md1 := gmdj.MD{
		Aggs: [][]agg.Spec{{
			agg.MustParseSpec("count(*) AS cnt1"),
			agg.MustParseSpec("avg(F.Quantity) AS avg1"),
		}},
		Thetas: []expr.Expr{expr.MustParse(eq)},
	}
	md2 := gmdj.MD{
		Aggs: [][]agg.Spec{{
			agg.MustParseSpec("count(*) AS cnt2"),
			agg.MustParseSpec("avg(F.ExtendedPrice) AS avg2"),
		}},
		Thetas: []expr.Expr{expr.MustParse(eq + " AND F.Quantity >= B.avg1")},
	}
	return md1, md2
}

// vecChain evaluates the two-operator chain: the finalized output of MD1
// is the base-values relation of MD2, exactly as the multi-round
// protocol chains them on a single site.
func vecChain(base, detail *relation.Relation, md1, md2 gmdj.MD, opts gmdj.SubOpts) (*relation.Relation, error) {
	opts.Finalize = true
	out1, err := gmdj.EvalSub(base, detail, md1, opts)
	if err != nil {
		return nil, err
	}
	return gmdj.EvalSub(out1, detail, md2, opts)
}

// vecKernelPoint verifies the engines agree bit for bit on the chain,
// then times each configuration (fastest of repeat runs).
func vecKernelPoint(label string, detail *relation.Relation, attr string, repeat, workers int) (VecKernelPoint, error) {
	base, err := gmdj.EvalBase(detail, gmdj.BaseDef{Cols: []string{attr}})
	if err != nil {
		return VecKernelPoint{}, err
	}
	md1, md2 := vecKernelMDs(attr)
	// The batch is prebuilt outside the timed region, matching the site
	// engine's per-relation batch cache.
	batch, err := vec.FromRelation(detail)
	if err != nil {
		return VecKernelPoint{}, err
	}
	configs := []gmdj.SubOpts{
		{Engine: gmdj.EngineRow},
		{Engine: gmdj.EngineVector, Workers: 1, DetailBatch: batch},
		{Engine: gmdj.EngineVector, Workers: workers, DetailBatch: batch},
	}

	want, err := vecChain(base, detail, md1, md2, configs[0])
	if err != nil {
		return VecKernelPoint{}, err
	}
	for _, o := range configs[1:] {
		got, err := vecChain(base, detail, md1, md2, o)
		if err != nil {
			return VecKernelPoint{}, err
		}
		if d := relationDiff(want, got); d != "" {
			return VecKernelPoint{}, fmt.Errorf("engines diverge (workers=%d): %s", o.Workers, d)
		}
	}

	p := VecKernelPoint{Label: label, Rows: detail.Len(), Groups: base.Len()}
	times := make([]time.Duration, len(configs))
	for i, o := range configs {
		d, err := vecTimeChain(base, detail, md1, md2, o, repeat)
		if err != nil {
			return VecKernelPoint{}, err
		}
		times[i] = d
	}
	p.Row, p.Vec1, p.Vec = times[0], times[1], times[2]
	return p, nil
}

func vecTimeChain(base, detail *relation.Relation, md1, md2 gmdj.MD, opts gmdj.SubOpts, repeat int) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < repeat || i == 0; i++ {
		start := time.Now()
		if _, err := vecChain(base, detail, md1, md2, opts); err != nil {
			return 0, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// vecEnginesAgree runs the query on both clusters at the unoptimized and
// fully optimized levels and requires bit-identical result relations.
func vecEnginesAgree(rowH, vecH *Harness, q skalla.Query, sites int) error {
	rowSub, err := rowH.Cluster.Subset(sites)
	if err != nil {
		return err
	}
	vecSub, err := vecH.Cluster.Subset(sites)
	if err != nil {
		return err
	}
	for _, opts := range []skalla.Options{{}, skalla.AllOptimizations} {
		rr, err := rowSub.Query(q, "tpcr", opts)
		if err != nil {
			return fmt.Errorf("bench: vec agreement row engine: %w", err)
		}
		vr, err := vecSub.Query(q, "tpcr", opts)
		if err != nil {
			return fmt.Errorf("bench: vec agreement: %w", err)
		}
		// Result row order depends on site arrival order (it varies even
		// between two runs on the same cluster), so the cross-engine
		// comparison is on the canonically sorted multiset; the values
		// themselves must still match bit for bit.
		if d := rowsDiff(sortedRows(rr.Relation), sortedRows(vr.Relation)); d != "" {
			return fmt.Errorf("bench: engines diverge end to end (opts %+v): %s", opts, d)
		}
	}
	return nil
}

// relationDiff reports the first difference between two relations in row
// order, comparing float payloads bit for bit ("" when identical).
func relationDiff(a, b *relation.Relation) string {
	if !a.Schema.Equal(b.Schema) {
		return fmt.Sprintf("schemas differ: %s vs %s", a.Schema, b.Schema)
	}
	return rowsDiff(a.Rows, b.Rows)
}

func rowsDiff(a, b []relation.Row) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d vs %d rows", len(a), len(b))
	}
	for i, ra := range a {
		for j, x := range ra {
			if valCmp(x, b[i][j]) != 0 {
				return fmt.Sprintf("row %d col %d: %v vs %v", i, j, x, b[i][j])
			}
		}
	}
	return ""
}

// sortedRows copies the rows into a canonical total order.
func sortedRows(r *relation.Relation) []relation.Row {
	rows := make([]relation.Row, len(r.Rows))
	copy(rows, r.Rows)
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if c := valCmp(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return rows
}

// valCmp totally orders values on their representation (kind, int
// payload, float bits, string payload) — equality under it is exactly
// bit-for-bit equality.
func valCmp(x, y value.V) int {
	if x.K != y.K {
		return int(x.K) - int(y.K)
	}
	if x.I != y.I {
		if x.I < y.I {
			return -1
		}
		return 1
	}
	if xb, yb := math.Float64bits(x.F), math.Float64bits(y.F); xb != yb {
		if xb < yb {
			return -1
		}
		return 1
	}
	return strings.Compare(x.S, y.S)
}

// String renders the experiment report.
func (r *VecResult) String() string {
	t1 := &table{
		title: fmt.Sprintf("Vectorized engine: kernel-level GMDJ chain (%d workers)", r.Workers),
		header: []string{"query", "rows", "groups", "row (ms)", "vec x1 (ms)",
			fmt.Sprintf("vec x%d (ms)", r.Workers), "speedup"},
	}
	for _, p := range r.Kernel {
		t1.add(p.Label, fmt.Sprint(p.Rows), fmt.Sprint(p.Groups),
			ms(p.Row), ms(p.Vec1), ms(p.Vec), fmt.Sprintf("%.2fx", p.Speedup()))
	}
	t2 := &table{
		title:  fmt.Sprintf("Vectorized engine: combined query end to end (%d sites)", r.Sites),
		header: []string{"level", "row (ms)", "vec (ms)", "speedup", "rounds"},
	}
	for _, p := range r.Levels {
		t2.add(p.Level, ms(p.Row.EvalTime), ms(p.Vec.EvalTime),
			fmt.Sprintf("%.2fx", p.Speedup()), fmt.Sprint(p.Vec.Rounds))
	}
	return t1.String() + "\n" + t2.String()
}

// Metrics flattens the experiment under the "vec" figure key.
func (r *VecResult) Metrics() Results {
	out := map[string]float64{
		"workers": float64(r.Workers),
		"sites":   float64(r.Sites),
	}
	for _, p := range r.Kernel {
		suffix := "@" + p.Label
		out["kernel_rows"+suffix] = float64(p.Rows)
		out["kernel_row_ms"+suffix] = msF(p.Row)
		out["kernel_vec1_ms"+suffix] = msF(p.Vec1)
		out["kernel_vec_ms"+suffix] = msF(p.Vec)
		out["kernel_speedup"+suffix] = p.Speedup()
	}
	for _, p := range r.Levels {
		suffix := "@" + p.Level
		out["row_eval_ms"+suffix] = msF(p.Row.EvalTime)
		out["vec_eval_ms"+suffix] = msF(p.Vec.EvalTime)
		out["speedup"+suffix] = p.Speedup()
		out["rounds"+suffix] = float64(p.Vec.Rounds)
	}
	return Results{"vec": out}
}
