package bench

import (
	"math"
	"strings"
	"testing"

	"repro/skalla"
)

// smallConfig keeps the experiment tests fast; the shapes the paper
// reports are scale-free.
func smallConfig() Config {
	return Config{
		Sites: 4, Rows: 6000, Customers: 500, LowCardGroups: 100, Seed: 1,
	}
}

func newHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Sites != 8 || c.Rows == 0 || c.Customers == 0 || c.LowCardGroups == 0 {
		t.Errorf("defaults: %+v", c)
	}
	if c.Cost.LatencyPerMsg == 0 {
		t.Error("default cost model has no latency")
	}
}

func TestQueriesAreWellFormed(t *testing.T) {
	h := newHarness(t)
	for _, q := range []skalla.Query{
		GroupReductionQuery(HighCard), GroupReductionQuery(LowCard),
		CoalescingQuery(HighCard), CoalescingQuery(LowCard),
		CombinedQuery(HighCard),
	} {
		if _, err := h.Cluster.Query(q, "tpcr", skalla.NoOptimizations); err != nil {
			t.Errorf("query failed: %v", err)
		}
	}
}

// TestFig2Shape: group reduction must reduce groups received, match the
// paper's analytic formula within 5%, and the coordinator-side filter
// must cut shipped groups.
func TestFig2Shape(t *testing.T) {
	h := newHarness(t)
	r, err := h.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != h.Config.Sites {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.SiteGR.Received >= p.None.Received && p.Sites > 1 {
			t.Errorf("sites=%d: site GR did not reduce received groups (%d >= %d)",
				p.Sites, p.SiteGR.Received, p.None.Received)
		}
		if p.Sites > 1 && p.CoordGR.Shipped >= p.None.Shipped {
			t.Errorf("sites=%d: coord GR did not reduce shipped groups", p.Sites)
		}
		// The paper reports the formula matches within 5%.
		if p.PredictedRatio > 0 {
			errFrac := math.Abs(p.MeasuredRatio-p.PredictedRatio) / p.PredictedRatio
			if errFrac > 0.05 {
				t.Errorf("sites=%d: formula error %.1f%% (predicted %.3f, measured %.3f)",
					p.Sites, errFrac*100, p.PredictedRatio, p.MeasuredRatio)
			}
		}
	}
	// Non-reduced bytes grow superlinearly (quadratic in the paper);
	// with both reductions growth is linear. Compare growth factors
	// between n=2 and n=4.
	n2, n4 := r.Points[1], r.Points[3]
	noneGrowth := float64(n4.None.Bytes) / float64(n2.None.Bytes)
	bothGrowth := float64(n4.BothGR.Bytes) / float64(n2.BothGR.Bytes)
	if noneGrowth <= bothGrowth {
		t.Errorf("unreduced growth %.2f should exceed reduced growth %.2f", noneGrowth, bothGrowth)
	}
	// Quadratic-ish: groups shipped scale ~n^2 unreduced (each of n sites
	// gets all ~n*g groups).
	shipGrowth := float64(n4.None.Shipped) / float64(n2.None.Shipped)
	if shipGrowth < 3 {
		t.Errorf("unreduced shipped growth %.2f, want ~4 (quadratic)", shipGrowth)
	}
	if !strings.Contains(r.String(), "Fig 2") {
		t.Error("report rendering broken")
	}
}

// TestFig3Shape: coalescing halves the MD rounds and reduces both time
// and traffic; high-cardinality benefits more (the paper's panels).
func TestFig3Shape(t *testing.T) {
	h := newHarness(t)
	high, low, err := h.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range high.Points {
		if p.On.Rounds >= p.Off.Rounds {
			t.Errorf("sites=%d: coalescing did not cut rounds (%d >= %d)", p.Sites, p.On.Rounds, p.Off.Rounds)
		}
		if p.On.Bytes >= p.Off.Bytes {
			t.Errorf("sites=%d: coalescing did not cut bytes", p.Sites)
		}
	}
	// High-cardinality savings (bytes) exceed low-cardinality savings in
	// absolute terms.
	hSave := high.Points[len(high.Points)-1].Off.Bytes - high.Points[len(high.Points)-1].On.Bytes
	lSave := low.Points[len(low.Points)-1].Off.Bytes - low.Points[len(low.Points)-1].On.Bytes
	if hSave <= lSave {
		t.Errorf("high-card saving %d should exceed low-card %d", hSave, lSave)
	}
}

// TestFig4Shape: synchronization reduction collapses the correlated query
// to a single round and removes most traffic.
func TestFig4Shape(t *testing.T) {
	h := newHarness(t)
	high, low, err := h.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, sweep := range []*SweepResult{high, low} {
		for _, p := range sweep.Points {
			if p.Off.Rounds != 3 {
				t.Errorf("%s sites=%d: unoptimized rounds = %d, want 3", sweep.Title, p.Sites, p.Off.Rounds)
			}
			if p.On.Rounds != 1 {
				t.Errorf("%s sites=%d: sync-reduced rounds = %d, want 1", sweep.Title, p.Sites, p.On.Rounds)
			}
			if p.On.Bytes >= p.Off.Bytes {
				t.Errorf("%s sites=%d: no traffic saving", sweep.Title, p.Sites)
			}
		}
	}
}

// TestFig5Shape: both curves grow roughly linearly with data size and the
// optimized run stays well below the unoptimized one (paper: nearly half).
func TestFig5Shape(t *testing.T) {
	h := newHarness(t)
	r, err := h.Fig5(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Opt.Bytes >= p.Unopt.Bytes {
			t.Errorf("scale %d: optimized moved more data", p.Scale)
		}
	}
	// Linear growth: time at x4 is within [2, 8] times x1 for the
	// optimized run (allowing noise, but far from quadratic 16x).
	growth := float64(r.Points[3].Opt.Bytes) / float64(r.Points[0].Opt.Bytes)
	if growth < 1.5 || growth > 8 {
		t.Errorf("optimized bytes growth x1→x4 = %.2f, want roughly linear", growth)
	}
	// Constant-group variant runs too ("comparable results").
	rc, err := h.Fig5(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Points) != 4 {
		t.Fatal("const-group variant incomplete")
	}
	if err := h.Reset(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "Fig 5") || !strings.Contains(rc.String(), "constant group count") {
		t.Error("report rendering broken")
	}
}

func TestAblation(t *testing.T) {
	h := newHarness(t)
	rows, err := h.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	byLabel := map[string]Measure{}
	for _, r := range rows {
		byLabel[r.Label] = r.M
	}
	all, none := byLabel["all"], byLabel["none"]
	if all.Bytes >= none.Bytes {
		t.Error("all optimizations moved more data than none")
	}
	if all.Rounds != 1 || none.Rounds != 4 {
		t.Errorf("rounds: all=%d none=%d, want 1 and 4", all.Rounds, none.Rounds)
	}
	if !strings.Contains(FormatAblation(rows), "Ablation") {
		t.Error("ablation rendering broken")
	}
}

func TestFig5NeedsFourSites(t *testing.T) {
	h, err := NewHarness(Config{Sites: 2, Rows: 1000, Customers: 50, LowCardGroups: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Fig5(false); err == nil {
		t.Error("fig5 on 2 sites accepted")
	}
}

func TestTreeExperiment(t *testing.T) {
	cfg := smallConfig()
	cfg.Sites = 4 // 8 leaves
	r, err := TreeExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	flat := r.Points[0]
	if flat.Label != "flat" {
		t.Fatalf("first point = %s", flat.Label)
	}
	for _, p := range r.Points[1:] {
		// Relay trees must cut the groups shipped from the root.
		if p.M.Shipped >= flat.M.Shipped {
			t.Errorf("%s shipped %d >= flat %d", p.Label, p.M.Shipped, flat.M.Shipped)
		}
	}
	if !strings.Contains(r.String(), "Multi-tier") {
		t.Error("rendering broken")
	}
}

func TestServeExperiment(t *testing.T) {
	r, err := ServeExperiment(ServeConfig{
		Sites: 2, Rows: 1000, Customers: 100,
		Concurrency: 4, Queries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 8 {
		t.Fatalf("completed %d of 8 (rejected %d, shed %d, failed %d)",
			r.Completed, r.Rejected, r.Shed, r.Failed)
	}
	if r.Failed != 0 || r.Shed != 0 {
		t.Fatalf("failed %d, shed %d on a healthy local cluster", r.Failed, r.Shed)
	}
	if r.QPS() <= 0 || r.P50 <= 0 || r.P99 < r.P50 {
		t.Fatalf("degenerate latency stats: qps %.1f p50 %v p99 %v", r.QPS(), r.P50, r.P99)
	}
	m := r.Metrics()["serve"]
	for _, key := range []string{"qps", "p50_ms", "p99_ms", "completed", "rejected", "shed"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
}

// TestVecExperiment runs the row-vs-vectorized comparison at a small
// scale. Beyond the shape checks, this covers the RowEngine cluster
// configuration (the -row-engine escape hatch) end to end: the
// experiment itself fails if the two engines' results are not
// bit-identical.
func TestVecExperiment(t *testing.T) {
	cfg := smallConfig()
	cfg.Rows = 3000
	r, err := VecExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Kernel) != 2 || r.Kernel[0].Label != "fig2_high" || r.Kernel[1].Label != "fig4_low" {
		t.Fatalf("kernel points: %+v", r.Kernel)
	}
	for _, p := range r.Kernel {
		if p.Row <= 0 || p.Vec1 <= 0 || p.Vec <= 0 {
			t.Errorf("%s: degenerate timings %+v", p.Label, p)
		}
		if p.Rows != cfg.Rows || p.Groups <= 0 {
			t.Errorf("%s: rows %d groups %d", p.Label, p.Rows, p.Groups)
		}
	}
	if len(r.Levels) != 4 || r.Levels[0].Level != "O0" || r.Levels[3].Level != "O3" {
		t.Fatalf("levels: %+v", r.Levels)
	}
	for _, p := range r.Levels {
		if p.Row.EvalTime <= 0 || p.Vec.EvalTime <= 0 || p.Vec.Rounds == 0 {
			t.Errorf("%s: degenerate measures %+v", p.Level, p)
		}
	}
	if r.BestKernelSpeedup() <= 0 {
		t.Error("no kernel speedup computed")
	}
	m := r.Metrics()["vec"]
	for _, key := range []string{
		"workers", "kernel_speedup@fig2_high", "kernel_speedup@fig4_low",
		"kernel_row_ms@fig2_high", "kernel_vec_ms@fig2_high",
		"row_eval_ms@O0", "vec_eval_ms@O3", "speedup@O3",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if !strings.Contains(r.String(), "Vectorized engine") {
		t.Error("rendering broken")
	}
}
