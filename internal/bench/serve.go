package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tpcr"
	"repro/internal/transport"
	"repro/skalla"
)

// ServeConfig parameterizes the closed-loop concurrent-serving
// experiment: Concurrency workers each keep exactly one query in flight
// against a bounded QueryService until Queries have been issued, so
// offered load tracks service capacity the way a well-behaved upstream
// does, and admission rejections measure deliberate overload.
type ServeConfig struct {
	// Sites, Rows, Customers, Seed shape the TPCR dataset (defaults:
	// 4 sites, 8000 rows, 400 customers, seed 1).
	Sites     int
	Rows      int
	Customers int
	Seed      int64
	// Concurrency is the closed-loop worker count (default 8).
	Concurrency int
	// Queries is the total number issued across all workers (default 64).
	Queries int
	// MaxConcurrent / QueueDepth / QueueTimeout bound the service (see
	// skalla.ServeConfig). Defaults: half the workers, a 2-deep queue,
	// 50ms — an intentionally undersized service, so the run exercises
	// queueing and typed rejection, not just throughput.
	MaxConcurrent int
	QueueDepth    int
	QueueTimeout  time.Duration
}

func (c ServeConfig) defaults() ServeConfig {
	if c.Sites == 0 {
		c.Sites = 4
	}
	if c.Rows == 0 {
		c.Rows = 8000
	}
	if c.Customers == 0 {
		c.Customers = 400
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
	if c.Queries == 0 {
		c.Queries = 64
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = (c.Concurrency + 1) / 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 50 * time.Millisecond
	}
	return c
}

// serveQueryMix is the workload: the experiment cycles through it so
// concurrent executions overlap distinct plans, not one cached shape.
var serveQueryMix = []string{
	"SELECT RegionKey, count(*) AS cnt, avg(ExtendedPrice) AS avg_price FROM tpcr GROUP BY RegionKey",
	"SELECT MktSegment, count(*) AS lines FROM tpcr GROUP BY MktSegment",
	"SELECT RegionKey, MktSegment, sum(Quantity) AS qty FROM tpcr GROUP BY RegionKey, MktSegment",
	"SELECT RegionKey, sum(ExtendedPrice) AS revenue FROM tpcr WHERE Discount > 0.02 GROUP BY RegionKey",
}

// ServeResult summarizes one closed-loop run. Latency percentiles cover
// completed queries only; rejected and shed submissions are counted
// separately (they are the admission-control signal, not service time).
type ServeResult struct {
	Config    ServeConfig
	Completed int
	Rejected  int // typed admission rejections (retried after backoff)
	Shed      int // refused end-to-end by the sites (overload / draining)
	Failed    int // any other error
	Elapsed   time.Duration
	P50       time.Duration
	P99       time.Duration
	// ProfileP50 / ProfileP99 are the server-side execution-wall
	// quantiles from the serve.query_ns histogram that the profiling
	// pipeline feeds. Unlike P50/P99 (measured at the client, queueing
	// included) they cover execution only, so the gap between the two
	// pairs is the admission/queue wait.
	ProfileP50 time.Duration
	ProfileP99 time.Duration
	// Profiled counts the queries the coordinator published a profile
	// tree for (every served query is QueryID-tagged in serve mode).
	Profiled int
}

// QPS is the completed-query throughput over the whole run.
func (r *ServeResult) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// String renders the run the way the figure tables do.
func (r *ServeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrent serving (closed loop): %d workers, %d queries, service %d slots + %d queue\n",
		r.Config.Concurrency, r.Config.Queries, r.Config.MaxConcurrent, r.Config.QueueDepth)
	fmt.Fprintf(&b, "  completed %d  rejected %d  shed %d  failed %d\n",
		r.Completed, r.Rejected, r.Shed, r.Failed)
	fmt.Fprintf(&b, "  %.1f qps   p50 %v   p99 %v   elapsed %v\n",
		r.QPS(), r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  profiles: %d queries   exec p50 %v   exec p99 %v\n",
		r.Profiled, r.ProfileP50.Round(time.Microsecond), r.ProfileP99.Round(time.Microsecond))
	return b.String()
}

// Metrics flattens the run for BENCH_results.json under figure "serve".
func (r *ServeResult) Metrics() Results {
	return Results{"serve": {
		"concurrency":     float64(r.Config.Concurrency),
		"queries":         float64(r.Config.Queries),
		"completed":       float64(r.Completed),
		"rejected":        float64(r.Rejected),
		"shed":            float64(r.Shed),
		"failed":          float64(r.Failed),
		"qps":             r.QPS(),
		"p50_ms":          float64(r.P50) / float64(time.Millisecond),
		"p99_ms":          float64(r.P99) / float64(time.Millisecond),
		"profile.queries": float64(r.Profiled),
		"profile.p50_ms":  float64(r.ProfileP50) / float64(time.Millisecond),
		"profile.p99_ms":  float64(r.ProfileP99) / float64(time.Millisecond),
	}}
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted
// durations by the nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// ServeExperiment runs the closed-loop concurrent-serving benchmark on an
// in-process cluster: every worker keeps one query in flight until the
// budget is spent, classifying each completion as served, rejected at
// admission, shed by the sites, or failed.
func ServeExperiment(cfg ServeConfig) (*ServeResult, error) {
	cfg = cfg.defaults()
	// The sink collects the serve-mode profiling pipeline's output:
	// per-query execution-wall histogram and published profile trees.
	sink := obs.New()
	cluster, err := skalla.NewLocalCluster(skalla.ClusterConfig{Sites: cfg.Sites, Obs: sink})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	tc := tpcr.Config{Rows: cfg.Rows, Customers: cfg.Customers, Seed: cfg.Seed}
	if _, err := cluster.Generate("tpcr", "tpcr", tpcr.GenParams(tc)); err != nil {
		return nil, err
	}
	if err := tpcr.FillCatalog(cluster.Catalog(), cluster.SiteIDs(), tc); err != nil {
		return nil, err
	}
	svc, err := skalla.NewQueryService(cluster, skalla.ServeConfig{
		MaxConcurrent: cfg.MaxConcurrent,
		QueueDepth:    cfg.QueueDepth,
		QueueTimeout:  cfg.QueueTimeout,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	res := &ServeResult{Config: cfg}
	var next int64
	var mu sync.Mutex
	var latencies []time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= cfg.Queries {
					return
				}
				q := serveQueryMix[i%len(serveQueryMix)]
				// A rejection is counted and retried after a short
				// backoff — the closed-loop upstream a 429 asks for —
				// so the budget measures served queries, with the
				// rejection count as the overload signal.
				for {
					t0 := time.Now()
					_, err := svc.Query(context.Background(), q)
					lat := time.Since(t0)
					mu.Lock()
					switch {
					case err == nil:
						res.Completed++
						latencies = append(latencies, lat)
					case errors.Is(err, skalla.ErrAdmission):
						res.Rejected++
					case errors.Is(err, transport.ErrOverloaded), errors.Is(err, transport.ErrDraining):
						res.Shed++
					default:
						res.Failed++
					}
					mu.Unlock()
					if err == nil || !errors.Is(err, skalla.ErrAdmission) {
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = percentile(latencies, 50)
	res.P99 = percentile(latencies, 99)
	h := sink.Metrics.Histogram("serve.query_ns").Snapshot()
	res.ProfileP50 = time.Duration(h.Quantile(0.50))
	res.ProfileP99 = time.Duration(h.Quantile(0.99))
	res.Profiled = int(sink.Metrics.CounterValue("coord.queries_profiled"))
	if res.Completed == 0 {
		return res, fmt.Errorf("bench: serve experiment completed no queries (%d rejected, %d shed, %d failed)",
			res.Rejected, res.Shed, res.Failed)
	}
	return res, nil
}
