package bench

//lint:deterministic benchmark JSON artifacts must encode identically for a fixed dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Results is the machine-readable benchmark artifact: figure → metric →
// value. Metric names follow "<variant>_<quantity>[@<point>]" (e.g.
// "site_gr_eval_ms@s8", "opt_bytes_kb@x4"); encoding/json sorts both map
// levels, so the file is deterministic for a fixed dataset and metric
// set (timing values still vary run to run).
type Results map[string]map[string]float64

// Merge folds other's figures into r, overwriting shared metric names.
func (r Results) Merge(other Results) {
	for fig, metrics := range other {
		if r[fig] == nil {
			r[fig] = map[string]float64{}
		}
		for k, v := range metrics {
			r[fig][k] = v
		}
	}
}

// WriteFile writes the artifact as indented JSON.
func (r Results) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode results: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write results: %w", err)
	}
	return nil
}

func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
func kbF(n int64) float64         { return float64(n) / 1024 }

// measureMetrics flattens one Measure under a variant@point prefix.
func measureMetrics(into map[string]float64, variant, point string, m Measure) {
	suffix := "@" + point
	into[variant+"_eval_ms"+suffix] = msF(m.EvalTime)
	into[variant+"_bytes_kb"+suffix] = kbF(m.Bytes)
	into[variant+"_groups"+suffix] = float64(m.Groups())
	into[variant+"_rounds"+suffix] = float64(m.Rounds)
}

// Metrics flattens the group reduction experiment (Fig. 2).
func (r *Fig2Result) Metrics() Results {
	out := map[string]float64{}
	for _, p := range r.Points {
		pt := fmt.Sprintf("s%d", p.Sites)
		measureMetrics(out, "none", pt, p.None)
		measureMetrics(out, "site_gr", pt, p.SiteGR)
		measureMetrics(out, "coord_gr", pt, p.CoordGR)
		measureMetrics(out, "both_gr", pt, p.BothGR)
		out["c@"+pt] = p.C
		out["predicted_ratio@"+pt] = p.PredictedRatio
		out["measured_ratio@"+pt] = p.MeasuredRatio
	}
	return Results{"fig2": out}
}

// Metrics flattens a two-variant sweep under the given figure key (e.g.
// "fig3_high").
func (r *SweepResult) Metrics(figure string) Results {
	out := map[string]float64{}
	for _, p := range r.Points {
		pt := fmt.Sprintf("s%d", p.Sites)
		measureMetrics(out, "off", pt, p.Off)
		measureMetrics(out, "on", pt, p.On)
	}
	return Results{figure: out}
}

// Metrics flattens the scale-up experiment under "fig5_grow" or
// "fig5_const" depending on the variant that ran.
func (r *Fig5Result) Metrics() Results {
	figure := "fig5_grow"
	if r.ConstGroups {
		figure = "fig5_const"
	}
	out := map[string]float64{}
	for _, p := range r.Points {
		pt := fmt.Sprintf("x%d", p.Scale)
		out["rows@"+pt] = float64(p.Rows)
		measureMetrics(out, "unopt", pt, p.Unopt)
		measureMetrics(out, "opt", pt, p.Opt)
		out["opt_site_ms@"+pt] = msF(p.Opt.SiteTime)
		out["opt_coord_ms@"+pt] = msF(p.Opt.CoordTime)
		out["opt_comm_ms@"+pt] = msF(p.Opt.CommTime)
	}
	return Results{figure: out}
}

// AblationMetrics flattens the per-optimization ablation rows.
func AblationMetrics(rows []AblationRow) Results {
	out := map[string]float64{}
	for _, r := range rows {
		measureMetrics(out, r.Label, "s8", r.M)
	}
	return Results{"ablation": out}
}

// Metrics flattens the multi-tier topology experiment. Point labels
// ("tree fanout=4") are normalized into metric-name-safe tokens.
func (r *TreeResult) Metrics() Results {
	out := map[string]float64{"leaves": float64(r.Leaves)}
	norm := strings.NewReplacer(" ", "_", "=", "")
	for _, p := range r.Points {
		measureMetrics(out, norm.Replace(p.Label), fmt.Sprintf("relays%d", p.Relays), p.M)
	}
	return Results{"tree": out}
}

// RunAllResults executes every experiment, returning both the human
// report and the machine-readable artifact.
func (h *Harness) RunAllResults() (string, Results, error) {
	res := Results{}
	report, err := h.runAll(res)
	if err != nil {
		return "", nil, err
	}
	return report, res, nil
}
