package catalog

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/expr"
	"repro/internal/value"
)

// JSON persistence for distribution knowledge, so a coordinator's catalog
// survives restarts and can be authored by hand for real deployments
// (which know their partitioning out of band). The format is stable and
// human-editable:
//
//	{
//	  "sites": [
//	    {"id": "site0", "domains": {
//	        "nationkey": {"set": [0, 8, 16, 24]},
//	        "shipdate":  {"min": 0, "max": 2520}
//	    }}
//	  ],
//	  "fds": [{"from": "custkey", "to": "nationkey"}]
//	}

type jsonValue struct {
	Int *int64   `json:"int,omitempty"`
	Num *float64 `json:"num,omitempty"`
	Str *string  `json:"str,omitempty"`
}

func toJSONValue(v value.V) (jsonValue, error) {
	switch v.K {
	case value.KindInt:
		i := v.I
		return jsonValue{Int: &i}, nil
	case value.KindFloat:
		f := v.F
		return jsonValue{Num: &f}, nil
	case value.KindString:
		s := v.S
		return jsonValue{Str: &s}, nil
	default:
		return jsonValue{}, fmt.Errorf("catalog: cannot persist %s value", v.K)
	}
}

func (jv jsonValue) value() (value.V, error) {
	switch {
	case jv.Int != nil:
		return value.NewInt(*jv.Int), nil
	case jv.Num != nil:
		return value.NewFloat(*jv.Num), nil
	case jv.Str != nil:
		return value.NewString(*jv.Str), nil
	default:
		return value.Null, fmt.Errorf("catalog: empty value in catalog file")
	}
}

// UnmarshalJSON accepts both the object form and bare JSON scalars, so
// hand-written catalogs can say "set": [0, 8, 16].
func (jv *jsonValue) UnmarshalJSON(data []byte) error {
	var raw any
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	switch x := raw.(type) {
	case float64:
		if x == float64(int64(x)) {
			i := int64(x)
			jv.Int = &i
		} else {
			jv.Num = &x
		}
		return nil
	case string:
		jv.Str = &x
		return nil
	case map[string]any:
		type alias jsonValue
		var a alias
		if err := json.Unmarshal(data, &a); err != nil {
			return err
		}
		*jv = jsonValue(a)
		return nil
	default:
		return fmt.Errorf("catalog: cannot parse value %v", raw)
	}
}

// MarshalJSON emits the compact scalar form.
func (jv jsonValue) MarshalJSON() ([]byte, error) {
	switch {
	case jv.Int != nil:
		return json.Marshal(*jv.Int)
	case jv.Num != nil:
		return json.Marshal(*jv.Num)
	case jv.Str != nil:
		return json.Marshal(*jv.Str)
	default:
		return nil, fmt.Errorf("catalog: empty value")
	}
}

type jsonDomain struct {
	Set []jsonValue `json:"set,omitempty"`
	Min *jsonValue  `json:"min,omitempty"`
	Max *jsonValue  `json:"max,omitempty"`
}

type jsonSite struct {
	ID      string                `json:"id"`
	Domains map[string]jsonDomain `json:"domains,omitempty"`
}

type jsonFD struct {
	From string `json:"from"`
	To   string `json:"to"`
}

type jsonCatalog struct {
	Sites []jsonSite `json:"sites"`
	FDs   []jsonFD   `json:"fds,omitempty"`
}

// WriteJSON serializes the catalog.
func (c *Catalog) WriteJSON(w io.Writer) error {
	out := jsonCatalog{}
	for _, s := range c.Sites {
		js := jsonSite{ID: s.ID, Domains: map[string]jsonDomain{}}
		for attr, d := range s.Domains {
			jd := jsonDomain{}
			if d.Set != nil {
				for _, v := range d.Set {
					jv, err := toJSONValue(v)
					if err != nil {
						return fmt.Errorf("catalog: site %s attr %s: %w", s.ID, attr, err)
					}
					jd.Set = append(jd.Set, jv)
				}
				if jd.Set == nil {
					jd.Set = []jsonValue{}
				}
			}
			if d.HasMin {
				jv, err := toJSONValue(d.Min)
				if err != nil {
					return err
				}
				jd.Min = &jv
			}
			if d.HasMax {
				jv, err := toJSONValue(d.Max)
				if err != nil {
					return err
				}
				jd.Max = &jv
			}
			js.Domains[attr] = jd
		}
		out.Sites = append(out.Sites, js)
	}
	for _, fd := range c.FDs {
		out.FDs = append(out.FDs, jsonFD{From: fd.From, To: fd.To})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a catalog.
func ReadJSON(r io.Reader) (*Catalog, error) {
	var in jsonCatalog
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("catalog: parse: %w", err)
	}
	c := &Catalog{}
	for _, js := range in.Sites {
		if js.ID == "" {
			return nil, fmt.Errorf("catalog: site without id")
		}
		si := SiteInfo{ID: js.ID, Domains: map[string]expr.Domain{}}
		for attr, jd := range js.Domains {
			var d expr.Domain
			if jd.Set != nil {
				vals := make([]value.V, len(jd.Set))
				for i, jv := range jd.Set {
					v, err := jv.value()
					if err != nil {
						return nil, fmt.Errorf("catalog: site %s attr %s: %w", js.ID, attr, err)
					}
					vals[i] = v
				}
				d = expr.DomainSet(vals...)
			} else {
				if jd.Min != nil {
					v, err := jd.Min.value()
					if err != nil {
						return nil, err
					}
					d.HasMin, d.Min = true, v
				}
				if jd.Max != nil {
					v, err := jd.Max.value()
					if err != nil {
						return nil, err
					}
					d.HasMax, d.Max = true, v
				}
			}
			si.Domains[attr] = d
		}
		c.Sites = append(c.Sites, si)
	}
	for _, fd := range in.FDs {
		c.AddFD(fd.From, fd.To)
	}
	return c, nil
}

// SaveFile writes the catalog to a JSON file.
func (c *Catalog) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	return c.WriteJSON(f)
}

// LoadFile reads a catalog from a JSON file.
func LoadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
