// Package catalog holds the distribution knowledge of a Skalla warehouse:
// which sites exist, what is known about each site's partition of the
// detail relation (the predicates φ_i of Theorem 4, represented as
// per-attribute domains), and functional dependencies between attributes.
//
// The optimizer consults the catalog for distribution-aware group
// reduction (Theorem 4) and for partition-attribute detection
// (Definition 2), which enables synchronization reduction (Corollary 1).
// An empty catalog is valid: all distribution-aware optimizations simply
// stay off, as the paper's distribution-independent strategies require no
// such knowledge.
package catalog

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/value"
)

// SiteInfo describes one site and what is known about its partition.
type SiteInfo struct {
	// ID is the site's unique name.
	ID string
	// Domains maps detail attribute names (case-insensitive) to the set
	// of values that attribute can take at this site. Attributes without
	// an entry are unconstrained.
	Domains map[string]expr.Domain
}

// FD is a functional dependency From → To between detail attributes: each
// From value determines a unique To value. If To is a partition attribute,
// From is one too (the paper's footnote on derived partition attributes,
// e.g. CustKey → NationKey in the TPC-R partitioning).
type FD struct {
	From string
	To   string
}

// Catalog is the distribution knowledge for one distributed warehouse.
type Catalog struct {
	Sites []SiteInfo
	FDs   []FD
}

// New returns a catalog over the named sites with no distribution
// knowledge.
func New(siteIDs ...string) *Catalog {
	c := &Catalog{}
	for _, id := range siteIDs {
		c.Sites = append(c.Sites, SiteInfo{ID: id, Domains: map[string]expr.Domain{}})
	}
	return c
}

// Site returns the info for the named site.
func (c *Catalog) Site(id string) (*SiteInfo, error) {
	for i := range c.Sites {
		if c.Sites[i].ID == id {
			return &c.Sites[i], nil
		}
	}
	return nil, fmt.Errorf("catalog: unknown site %q", id)
}

// SetDomain records the domain of attr at the named site.
func (c *Catalog) SetDomain(siteID, attr string, d expr.Domain) error {
	s, err := c.Site(siteID)
	if err != nil {
		return err
	}
	if s.Domains == nil {
		s.Domains = map[string]expr.Domain{}
	}
	s.Domains[strings.ToLower(attr)] = d
	return nil
}

// AddFD records a functional dependency From → To. Re-adding an existing
// dependency is a no-op.
func (c *Catalog) AddFD(from, to string) {
	fd := FD{From: strings.ToLower(from), To: strings.ToLower(to)}
	for _, have := range c.FDs {
		if have == fd {
			return
		}
	}
	c.FDs = append(c.FDs, fd)
}

// DomainsFor returns the domain map of the named site (nil if unknown
// site or no knowledge).
func (c *Catalog) DomainsFor(siteID string) map[string]expr.Domain {
	s, err := c.Site(siteID)
	if err != nil {
		return nil
	}
	return s.Domains
}

// IsPartitionAttr reports whether attr satisfies Definition 2: the
// projections of the sites' partitions onto attr are pairwise disjoint.
// This holds when every site declares a domain for attr and those domains
// are pairwise disjoint, or when attr functionally determines (possibly
// transitively) an attribute for which that holds.
func (c *Catalog) IsPartitionAttr(attr string) bool {
	return c.isPartitionAttr(strings.ToLower(attr), map[string]bool{})
}

func (c *Catalog) isPartitionAttr(attr string, visiting map[string]bool) bool {
	if visiting[attr] {
		return false // FD cycle guard
	}
	visiting[attr] = true
	if c.directPartitionAttr(attr) {
		return true
	}
	for _, fd := range c.FDs {
		if fd.From == attr && c.isPartitionAttr(fd.To, visiting) {
			return true
		}
	}
	return false
}

// directPartitionAttr checks pairwise domain disjointness for attr.
func (c *Catalog) directPartitionAttr(attr string) bool {
	if len(c.Sites) == 0 {
		return false
	}
	domains := make([]expr.Domain, len(c.Sites))
	for i, s := range c.Sites {
		d, ok := s.Domains[attr]
		if !ok {
			return false // unconstrained at some site: cannot conclude
		}
		domains[i] = d
	}
	for i := 0; i < len(domains); i++ {
		for j := i + 1; j < len(domains); j++ {
			if !disjoint(domains[i], domains[j]) {
				return false
			}
		}
	}
	return true
}

// PartitionAttrs returns every attribute the catalog can prove to be a
// partition attribute: all directly-declared attributes plus FD-derived
// ones.
func (c *Catalog) PartitionAttrs() []string {
	seen := map[string]struct{}{}
	var out []string
	add := func(a string) {
		if _, dup := seen[a]; dup {
			return
		}
		if c.IsPartitionAttr(a) {
			seen[a] = struct{}{}
			out = append(out, a)
		}
	}
	for _, s := range c.Sites {
		for a := range s.Domains {
			add(a)
		}
	}
	for _, fd := range c.FDs {
		add(fd.From)
	}
	return out
}

// disjoint conservatively decides whether two domains share no value;
// false means "might overlap".
func disjoint(a, b expr.Domain) bool {
	if a.Set != nil && b.Set != nil {
		keys := make(map[string]struct{}, len(a.Set))
		for _, v := range a.Set {
			keys[v.Key()] = struct{}{}
		}
		for _, v := range b.Set {
			if _, hit := keys[v.Key()]; hit {
				return false
			}
		}
		return true
	}
	if a.Set != nil {
		return setDisjointFromRange(a, b)
	}
	if b.Set != nil {
		return setDisjointFromRange(b, a)
	}
	// Two ranges: disjoint iff one ends before the other starts.
	if a.HasMax && b.HasMin && value.Less(a.Max, b.Min) {
		return true
	}
	if b.HasMax && a.HasMin && value.Less(b.Max, a.Min) {
		return true
	}
	return false
}

// setDisjointFromRange reports whether no element of set s falls inside
// range r.
func setDisjointFromRange(s, r expr.Domain) bool {
	for _, v := range s.Set {
		below := r.HasMin && value.Less(v, r.Min)
		above := r.HasMax && value.Less(r.Max, v)
		if !below && !above {
			return false
		}
	}
	return true
}
