package catalog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/value"
)

func vi(vals ...int64) []value.V {
	out := make([]value.V, len(vals))
	for i, v := range vals {
		out[i] = value.NewInt(v)
	}
	return out
}

func TestSiteLookupAndDomains(t *testing.T) {
	c := New("s1", "s2")
	if _, err := c.Site("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Site("nope"); err == nil {
		t.Error("unknown site accepted")
	}
	if err := c.SetDomain("s1", "NationKey", expr.DomainSet(vi(0, 1)...)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDomain("nope", "x", expr.Domain{}); err == nil {
		t.Error("SetDomain on unknown site accepted")
	}
	d := c.DomainsFor("s1")
	if len(d) != 1 {
		t.Errorf("DomainsFor = %v", d)
	}
	if c.DomainsFor("nope") != nil {
		t.Error("DomainsFor unknown site should be nil")
	}
}

func TestPartitionAttrSets(t *testing.T) {
	c := New("s1", "s2", "s3")
	c.SetDomain("s1", "nk", expr.DomainSet(vi(0, 1, 2)...))
	c.SetDomain("s2", "nk", expr.DomainSet(vi(3, 4)...))
	c.SetDomain("s3", "nk", expr.DomainSet(vi(5)...))
	if !c.IsPartitionAttr("NK") {
		t.Error("disjoint sets not detected as partition attribute")
	}
	// Overlap breaks it.
	c.SetDomain("s3", "nk", expr.DomainSet(vi(4, 5)...))
	if c.IsPartitionAttr("nk") {
		t.Error("overlapping sets detected as partition attribute")
	}
}

func TestPartitionAttrRanges(t *testing.T) {
	c := New("s1", "s2")
	c.SetDomain("s1", "a", expr.DomainRange(value.NewInt(1), value.NewInt(25)))
	c.SetDomain("s2", "a", expr.DomainRange(value.NewInt(26), value.NewInt(50)))
	if !c.IsPartitionAttr("a") {
		t.Error("disjoint ranges not detected")
	}
	c.SetDomain("s2", "a", expr.DomainRange(value.NewInt(25), value.NewInt(50)))
	if c.IsPartitionAttr("a") {
		t.Error("touching ranges (sharing 25) detected as disjoint")
	}
}

func TestPartitionAttrSetVsRange(t *testing.T) {
	c := New("s1", "s2")
	c.SetDomain("s1", "a", expr.DomainSet(vi(1, 2)...))
	c.SetDomain("s2", "a", expr.DomainRange(value.NewInt(10), value.NewInt(20)))
	if !c.IsPartitionAttr("a") {
		t.Error("set below range not disjoint")
	}
	c.SetDomain("s1", "a", expr.DomainSet(vi(1, 15)...))
	if c.IsPartitionAttr("a") {
		t.Error("set element inside range not caught")
	}
}

func TestPartitionAttrMissingSite(t *testing.T) {
	c := New("s1", "s2")
	c.SetDomain("s1", "a", expr.DomainSet(vi(1)...))
	// s2 has no domain for a: cannot conclude.
	if c.IsPartitionAttr("a") {
		t.Error("partition attr concluded with missing domain")
	}
	if New().IsPartitionAttr("a") {
		t.Error("empty catalog has partition attrs")
	}
}

func TestFDDerivedPartitionAttr(t *testing.T) {
	c := New("s1", "s2")
	c.SetDomain("s1", "nationkey", expr.DomainSet(vi(0, 1)...))
	c.SetDomain("s2", "nationkey", expr.DomainSet(vi(2, 3)...))
	c.AddFD("CustKey", "NationKey")
	c.AddFD("CustName", "CustKey")
	if !c.IsPartitionAttr("custkey") {
		t.Error("FD-derived partition attribute not detected")
	}
	if !c.IsPartitionAttr("CustName") {
		t.Error("transitive FD-derived partition attribute not detected")
	}
	if c.IsPartitionAttr("other") {
		t.Error("unrelated attribute detected")
	}
}

func TestFDCycleGuard(t *testing.T) {
	c := New("s1")
	c.AddFD("a", "b")
	c.AddFD("b", "a")
	if c.IsPartitionAttr("a") {
		t.Error("FD cycle concluded partition attr")
	}
}

func TestPartitionAttrsEnumeration(t *testing.T) {
	c := New("s1", "s2")
	c.SetDomain("s1", "nk", expr.DomainSet(vi(0)...))
	c.SetDomain("s2", "nk", expr.DomainSet(vi(1)...))
	c.SetDomain("s1", "other", expr.DomainSet(vi(0)...))
	// "other" has no domain at s2 → not a partition attr.
	c.AddFD("ck", "nk")
	attrs := c.PartitionAttrs()
	want := map[string]bool{"nk": true, "ck": true}
	if len(attrs) != 2 {
		t.Fatalf("PartitionAttrs = %v", attrs)
	}
	for _, a := range attrs {
		if !want[a] {
			t.Errorf("unexpected partition attr %q", a)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := New("s0", "s1")
	c.SetDomain("s0", "nationkey", expr.DomainSet(vi(0, 2, 4)...))
	c.SetDomain("s1", "nationkey", expr.DomainSet(vi(1, 3)...))
	c.SetDomain("s0", "shipdate", expr.DomainRange(value.NewInt(0), value.NewInt(100)))
	c.SetDomain("s1", "name", expr.DomainSet(value.NewString("a"), value.NewString("b")))
	c.SetDomain("s0", "frac", expr.DomainRange(value.NewFloat(0.25), value.NewFloat(0.75)))
	c.AddFD("custkey", "nationkey")

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sites) != 2 || len(back.FDs) != 1 {
		t.Fatalf("restored: %+v", back)
	}
	if !back.IsPartitionAttr("nationkey") || !back.IsPartitionAttr("custkey") {
		t.Error("partition knowledge lost")
	}
	d := back.DomainsFor("s0")["shipdate"]
	if !d.HasMin || !d.HasMax || d.Min.I != 0 || d.Max.I != 100 {
		t.Errorf("range domain lost: %+v", d)
	}
	if f := back.DomainsFor("s0")["frac"]; !f.HasMin || f.Min.F != 0.25 {
		t.Errorf("float domain lost: %+v", f)
	}
	if names := back.DomainsFor("s1")["name"]; len(names.Set) != 2 || names.Set[0].S != "a" {
		t.Errorf("string set lost: %+v", names)
	}
}

func TestJSONHandAuthored(t *testing.T) {
	src := `{
	  "sites": [
	    {"id": "site0", "domains": {"nationkey": {"set": [0, 8, 16]}}},
	    {"id": "site1", "domains": {"nationkey": {"set": [1, 9, 17]}}}
	  ],
	  "fds": [{"from": "custkey", "to": "nationkey"}]
	}`
	c, err := ReadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsPartitionAttr("NationKey") {
		t.Error("hand-authored partition sets not recognized")
	}
	// Bad inputs.
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"sites":[{"id":""}]}`)); err == nil {
		t.Error("empty site id accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"sites":[{"id":"x","domains":{"a":{"set":[true]}}}]}`)); err == nil {
		t.Error("bool domain value accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/catalog.json"
	c := New("s0")
	c.SetDomain("s0", "a", expr.DomainSet(vi(1)...))
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sites) != 1 || back.Sites[0].ID != "s0" {
		t.Errorf("loaded: %+v", back)
	}
	if _, err := LoadFile(dir + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}
