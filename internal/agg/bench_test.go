package agg

import (
	"testing"

	"repro/internal/value"
)

func BenchmarkAccAdd(b *testing.B) {
	for _, spec := range []string{"count(*) AS c", "sum(x) AS s", "avg(x) AS a", "var(x) AS v"} {
		b.Run(spec[:3], func(b *testing.B) {
			accs := NewAccs(MustParseSpec(spec))
			v := value.NewInt(42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, a := range accs {
					if err := a.Add(v); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkAccMerge(b *testing.B) {
	a := NewAcc(PSum, false)
	v := value.NewInt(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Merge(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h := newHLL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(value.NewInt(int64(i)))
	}
}

func BenchmarkHLLEncodeDecode(b *testing.B) {
	h := newHLL()
	for i := 0; i < 10000; i++ {
		h.Add(value.NewInt(int64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := h.Encode()
		if _, err := decodeHLL(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseSpec("avg(F.NumBytes) AS avg_nb"); err != nil {
			b.Fatal(err)
		}
	}
}
