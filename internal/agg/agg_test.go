package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestParseSpec(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"count(*) AS cnt1", "count(*) AS cnt1"},
		{"cnt(*) -> cnt1", "count(*) AS cnt1"},
		{"sum(F.NumBytes) AS sum1", "sum(F.NumBytes) AS sum1"},
		{"AVG(NumBytes) as avg_nb", "avg(NumBytes) AS avg_nb"},
		{"min(x + 1) AS m", "min(x + 1) AS m"},
		{"stddev(v) AS sd", "stddev(v) AS sd"},
		{"countd(ip) AS uniq", "countd(ip) AS uniq"},
		{"count(x) AS nx", "count(x) AS nx"},
	}
	for _, tc := range tests {
		s, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got := s.String(); got != tc.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"count(*)",      // no AS
		"sum(*) AS s",   // * only for count
		"frob(x) AS f",  // unknown function
		"sum(x AS s",    // malformed
		"sum() AS s",    // empty arg for non-count
		"count(*) AS ",  // empty name
		"sum(1 +) AS s", // bad expression
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) should fail", in)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"count(*) AS c", "sum(F.x) AS s", "avg(F.x / 2) AS a",
		"min(x) AS mn", "max(x) AS mx", "var(x) AS v", "countd(x) AS cd",
	}
	for _, in := range specs {
		s := MustParseSpec(in)
		again := MustParseSpec(s.String())
		if again.String() != s.String() {
			t.Errorf("round trip %q -> %q -> %q", in, s, again)
		}
	}
}

// runAgg aggregates vals through sub-accumulators split into nParts
// partitions, merges at the "coordinator", and finalizes — exactly the
// Theorem 1 pipeline.
func runAgg(t *testing.T, spec Spec, vals []value.V, nParts int) value.V {
	t.Helper()
	prims := spec.Prims()
	super := NewAccs(spec)
	for p := 0; p < nParts; p++ {
		sub := NewAccs(spec)
		for i, v := range vals {
			if i%nParts != p {
				continue
			}
			for _, a := range sub {
				if err := a.Add(v); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
		}
		for i := range prims {
			if err := super[i].Merge(sub[i].Result()); err != nil {
				t.Fatalf("Merge: %v", err)
			}
		}
	}
	states := make([]value.V, len(prims))
	for i, a := range super {
		states[i] = a.Result()
	}
	out, err := spec.Finalize(states)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return out
}

func ints(vs ...int64) []value.V {
	out := make([]value.V, len(vs))
	for i, v := range vs {
		out[i] = value.NewInt(v)
	}
	return out
}

func TestAggregatePipeline(t *testing.T) {
	vals := ints(1, 2, 3, 4, 5, 6)
	tests := []struct {
		spec string
		want value.V
	}{
		{"count(*) AS c", value.NewInt(6)},
		{"count(x) AS c", value.NewInt(6)},
		{"sum(x) AS s", value.NewInt(21)},
		{"avg(x) AS a", value.NewFloat(3.5)},
		{"min(x) AS m", value.NewInt(1)},
		{"max(x) AS m", value.NewInt(6)},
	}
	for _, tc := range tests {
		for _, parts := range []int{1, 2, 3, 6} {
			got := runAgg(t, MustParseSpec(tc.spec), vals, parts)
			if !value.Equal(got, tc.want) {
				t.Errorf("%s over %d parts = %v, want %v", tc.spec, parts, got, tc.want)
			}
		}
	}
}

func TestAggregateNulls(t *testing.T) {
	vals := []value.V{value.NewInt(10), value.Null, value.NewInt(20), value.Null}
	if got := runAgg(t, MustParseSpec("count(*) AS c"), vals, 2); got.I != 4 {
		t.Errorf("count(*) = %v, want 4", got)
	}
	if got := runAgg(t, MustParseSpec("count(x) AS c"), vals, 2); got.I != 2 {
		t.Errorf("count(x) = %v, want 2", got)
	}
	if got := runAgg(t, MustParseSpec("avg(x) AS a"), vals, 2); got.F != 15 {
		t.Errorf("avg = %v, want 15", got)
	}
}

func TestAggregateEmpty(t *testing.T) {
	var vals []value.V
	if got := runAgg(t, MustParseSpec("count(*) AS c"), vals, 2); got.I != 0 || got.K != value.KindInt {
		t.Errorf("count over empty = %v, want 0", got)
	}
	for _, spec := range []string{"sum(x) AS s", "avg(x) AS a", "min(x) AS m", "max(x) AS m", "var(x) AS v"} {
		if got := runAgg(t, MustParseSpec(spec), vals, 2); !got.IsNull() {
			t.Errorf("%s over empty = %v, want NULL", spec, got)
		}
	}
	if got := runAgg(t, MustParseSpec("countd(x) AS c"), vals, 2); got.I != 0 {
		t.Errorf("countd over empty = %v, want 0", got)
	}
}

func TestVarAndStddev(t *testing.T) {
	vals := ints(2, 4, 4, 4, 5, 5, 7, 9) // classic example: var=4, sd=2
	v := runAgg(t, MustParseSpec("var(x) AS v"), vals, 3)
	if math.Abs(v.F-4) > 1e-9 {
		t.Errorf("var = %v, want 4", v)
	}
	sd := runAgg(t, MustParseSpec("stddev(x) AS s"), vals, 3)
	if math.Abs(sd.F-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", sd)
	}
}

func TestMinMaxStrings(t *testing.T) {
	vals := []value.V{value.NewString("pear"), value.NewString("apple"), value.NewString("fig")}
	if got := runAgg(t, MustParseSpec("min(x) AS m"), vals, 2); got.S != "apple" {
		t.Errorf("min = %v", got)
	}
	if got := runAgg(t, MustParseSpec("max(x) AS m"), vals, 2); got.S != "pear" {
		t.Errorf("max = %v", got)
	}
}

func TestSumMixedIntFloat(t *testing.T) {
	vals := []value.V{value.NewInt(1), value.NewFloat(2.5)}
	got := runAgg(t, MustParseSpec("sum(x) AS s"), vals, 1)
	if got.K != value.KindFloat || got.F != 3.5 {
		t.Errorf("sum mixed = %v", got)
	}
	// Float partial merged into int partial promotes.
	got = runAgg(t, MustParseSpec("sum(x) AS s"), vals, 2)
	f, err := got.AsFloat()
	if err != nil || f != 3.5 {
		t.Errorf("sum mixed split = %v", got)
	}
}

// TestMergePartitionInvariance: the merged result must not depend on how
// the input is partitioned — the heart of Theorem 1.
func TestMergePartitionInvariance(t *testing.T) {
	f := func(raw []int16, parts uint8) bool {
		vals := make([]value.V, len(raw))
		for i, r := range raw {
			vals[i] = value.NewInt(int64(r))
		}
		n := int(parts%7) + 1
		for _, spec := range []string{"count(*) AS c", "sum(x) AS s", "min(x) AS m", "max(x) AS m"} {
			a := runAgg(t, MustParseSpec(spec), vals, 1)
			b := runAgg(t, MustParseSpec(spec), vals, n)
			if !value.Equal(a, b) && !(a.IsNull() && b.IsNull()) {
				return false
			}
		}
		// avg compares approximately (float association).
		a := runAgg(t, MustParseSpec("avg(x) AS a"), vals, 1)
		b := runAgg(t, MustParseSpec("avg(x) AS a"), vals, n)
		if a.IsNull() != b.IsNull() {
			return false
		}
		if !a.IsNull() {
			af, _ := a.AsFloat()
			bf, _ := b.AsFloat()
			if math.Abs(af-bf) > 1e-9*(1+math.Abs(af)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHLLAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{10, 1000, 50000} {
		vals := make([]value.V, 0, n*2)
		for i := 0; i < n; i++ {
			v := value.NewInt(int64(i))
			vals = append(vals, v, v) // duplicates must not inflate
		}
		rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		got := runAgg(t, MustParseSpec("countd(x) AS c"), vals, 4)
		err := math.Abs(float64(got.I)-float64(n)) / float64(n)
		if err > 0.15 {
			t.Errorf("countd(%d distinct) = %d (%.1f%% error)", n, got.I, err*100)
		}
	}
}

func TestHLLMergeCommutes(t *testing.T) {
	a, b := newHLL(), newHLL()
	for i := 0; i < 100; i++ {
		a.Add(value.NewInt(int64(i)))
		b.Add(value.NewInt(int64(i + 50)))
	}
	m1 := newHLL()
	m1.Merge(a)
	m1.Merge(b)
	m2 := newHLL()
	m2.Merge(b)
	m2.Merge(a)
	if m1.Estimate() != m2.Estimate() {
		t.Error("HLL merge not commutative")
	}
}

func TestDecodeHLLErrors(t *testing.T) {
	if _, err := decodeHLL(value.NewString("short")); err == nil {
		t.Error("short HLL state accepted")
	}
	if _, err := decodeHLL(value.NewInt(3)); err == nil {
		t.Error("non-string HLL state accepted")
	}
}

func TestFinalizeArityError(t *testing.T) {
	s := MustParseSpec("avg(x) AS a")
	if _, err := s.Finalize([]value.V{value.NewInt(1)}); err == nil {
		t.Error("short primitive vector accepted")
	}
}

func TestSubColumns(t *testing.T) {
	s := MustParseSpec("avg(x) AS a1")
	cols := s.SubColumns()
	if len(cols) != 2 || cols[0].Name != "a1__p0" || cols[1].Name != "a1__p1" {
		t.Errorf("SubColumns = %v", cols)
	}
	if cols[1].Kind != value.KindInt {
		t.Errorf("count prim kind = %v", cols[1].Kind)
	}
	if c := MustParseSpec("count(*) AS c").OutColumn(); c.Kind != value.KindInt {
		t.Errorf("count out kind = %v", c.Kind)
	}
}

func TestMergeTypeErrors(t *testing.T) {
	a := NewAcc(PCount, false)
	if err := a.Merge(value.NewString("x")); err == nil {
		t.Error("count merge of string accepted")
	}
	a = NewAcc(PSum, false)
	if err := a.Add(value.NewString("x")); err == nil {
		t.Error("sum of string accepted")
	}
	a = NewAcc(PMin, false)
	if err := a.Add(value.NewString("x")); err != nil {
		t.Errorf("first min value rejected: %v", err)
	}
	if err := a.Add(value.NewInt(1)); err == nil {
		t.Error("mixed-type min accepted")
	}
}

func TestExactCountDistinct(t *testing.T) {
	// Duplicates across partitions collapse exactly.
	vals := []value.V{
		value.NewInt(1), value.NewInt(2), value.NewInt(1),
		value.NewString("a"), value.NewString("a"), value.NewInt(2),
		value.NewFloat(2), // == int 2 by value identity
		value.Null,        // ignored
	}
	for _, parts := range []int{1, 2, 3} {
		got := runAgg(t, MustParseSpec("countdx(x) AS u"), vals, parts)
		if got.I != 3 {
			t.Errorf("countdx over %d parts = %v, want 3", parts, got)
		}
	}
	// Empty input.
	if got := runAgg(t, MustParseSpec("countdx(x) AS u"), nil, 2); got.I != 0 {
		t.Errorf("countdx empty = %v", got)
	}
	// Aliases parse.
	if MustParseSpec("exact_count_distinct(x) AS u").Func != CountDX {
		t.Error("alias not recognized")
	}
}

func TestExactDistinctSetEncoding(t *testing.T) {
	set := map[string]struct{}{"": {}, "a\x1fb": {}, "long-value-with-bytes\x00": {}}
	v := encodeSet(set)
	back, err := decodeSet(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(set) {
		t.Fatalf("decoded %d values, want %d", len(back), len(set))
	}
	for k := range set {
		if _, ok := back[k]; !ok {
			t.Errorf("value %q lost", k)
		}
	}
	// Corrupt states are rejected, not mis-decoded.
	if _, err := decodeSet(value.NewString("\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff")); err == nil {
		t.Error("corrupt set state accepted")
	}
	if _, err := decodeSet(value.NewInt(1)); err == nil {
		t.Error("non-string set state accepted")
	}
}

func TestExactDistinctCap(t *testing.T) {
	a := NewAcc(PSet, false)
	var err error
	for i := 0; i <= maxExactDistinct; i++ {
		if err = a.Add(value.NewInt(int64(i))); err != nil {
			break
		}
	}
	if err == nil {
		t.Error("exact distinct cap not enforced")
	}
}
