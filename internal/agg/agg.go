// Package agg implements the aggregate functions of the Skalla engine and
// their decomposition into distributive primitives.
//
// Theorem 1 of the paper rests on every aggregate f splitting into a
// sub-aggregate f' computed at the sites and a super-aggregate f”
// computed at the coordinator. Here each aggregate decomposes into a small
// vector of distributive primitives (count, sum, sum of squares, min, max,
// HLL sketch); the sites ship primitive states as ordinary row values, the
// coordinator merges states pointwise and finalizes. This uniformly covers
// the paper's COUNT and AVG and extends to algebraic aggregates (VAR,
// STDDEV) and a mergeable approximate COUNT DISTINCT that preserves the
// Theorem 2 traffic bound.
package agg

//lint:deterministic aggregate primitive states must be identical across runs and sites

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/value"
)

// Func identifies an aggregate function.
type Func int

// The supported aggregate functions.
const (
	Count Func = iota // COUNT(*) or COUNT(arg)
	Sum
	Avg
	Min
	Max
	Var    // population variance
	Stddev // population standard deviation
	CountD // approximate COUNT(DISTINCT arg) via HyperLogLog
	// CountDX is exact COUNT(DISTINCT arg): sites ship the distinct value
	// set itself. Exactness costs the Theorem 2 bound — the shipped state
	// grows with the number of distinct values — so it suits small
	// domains; use CountD for unbounded ones. States larger than
	// maxExactDistinct values are rejected.
	CountDX
)

var funcNames = map[Func]string{
	Count: "count", Sum: "sum", Avg: "avg", Min: "min", Max: "max",
	Var: "var", Stddev: "stddev", CountD: "countd", CountDX: "countdx",
}

var funcByName = map[string]Func{
	"count": Count, "cnt": Count, "sum": Sum, "avg": Avg, "mean": Avg,
	"min": Min, "max": Max, "var": Var, "variance": Var,
	"stddev": Stddev, "std": Stddev, "countd": CountD,
	"approx_count_distinct": CountD,
	"countdx":               CountDX,
	"exact_count_distinct":  CountDX,
}

// String returns the canonical function name.
func (f Func) String() string {
	if n, ok := funcNames[f]; ok {
		return n
	}
	return fmt.Sprintf("Func(%d)", int(f))
}

// Spec is one aggregate to compute: a function over an expression of the
// detail relation, named As in the output. A nil Arg means COUNT(*).
type Spec struct {
	Func Func
	Arg  expr.Expr // nil for COUNT(*)
	As   string
}

// Star reports whether the spec is COUNT(*).
func (s Spec) Star() bool { return s.Func == Count && s.Arg == nil }

// String renders the spec in its wire form, e.g. "sum(F.NumBytes) AS sum1".
func (s Spec) String() string {
	arg := "*"
	if s.Arg != nil {
		arg = s.Arg.String()
	}
	return fmt.Sprintf("%s(%s) AS %s", s.Func, arg, s.As)
}

// ParseSpec parses the wire form produced by Spec.String. The paper's
// arrow notation "cnt(*) -> cnt1" is accepted as well.
func ParseSpec(in string) (Spec, error) {
	src := strings.TrimSpace(in)
	// Normalize "->" to " AS ".
	if i := strings.LastIndex(src, "->"); i >= 0 {
		src = src[:i] + " AS " + src[i+2:]
	}
	asIdx := lastIndexASCIIFold(src, " AS ")
	if asIdx < 0 {
		return Spec{}, fmt.Errorf("agg: %q: missing AS clause", in)
	}
	name := strings.TrimSpace(src[asIdx+4:])
	if name == "" {
		return Spec{}, fmt.Errorf("agg: %q: empty output name", in)
	}
	call := strings.TrimSpace(src[:asIdx])
	open := strings.Index(call, "(")
	if open < 0 || !strings.HasSuffix(call, ")") {
		return Spec{}, fmt.Errorf("agg: %q: expected func(arg)", in)
	}
	fname := strings.ToLower(strings.TrimSpace(call[:open]))
	f, ok := funcByName[fname]
	if !ok {
		return Spec{}, fmt.Errorf("agg: %q: unknown aggregate function %q", in, fname)
	}
	argStr := strings.TrimSpace(call[open+1 : len(call)-1])
	if argStr == "*" || argStr == "" {
		if f != Count {
			return Spec{}, fmt.Errorf("agg: %q: only count may take *", in)
		}
		return Spec{Func: Count, As: name}, nil
	}
	arg, err := expr.Parse(argStr)
	if err != nil {
		return Spec{}, fmt.Errorf("agg: %q: %w", in, err)
	}
	return Spec{Func: f, Arg: arg, As: name}, nil
}

// lastIndexASCIIFold finds the last occurrence of pattern in s comparing
// bytes ASCII-case-insensitively. Unlike searching strings.ToUpper(s),
// byte positions stay valid for arbitrary (even non-UTF-8) input.
func lastIndexASCIIFold(s, pattern string) int {
	for i := len(s) - len(pattern); i >= 0; i-- {
		match := true
		for j := 0; j < len(pattern); j++ {
			a, b := s[i+j], pattern[j]
			if 'A' <= a && a <= 'Z' {
				a += 'a' - 'A'
			}
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			if a != b {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// MustParseSpec is ParseSpec but panics on error; for tests and literals.
func MustParseSpec(in string) Spec {
	s, err := ParseSpec(in)
	if err != nil {
		panic(err)
	}
	return s
}

// Prim identifies a distributive primitive aggregate.
type Prim int

// The distributive primitives aggregates decompose into.
const (
	PCount Prim = iota // count of (non-NULL, unless star) inputs
	PSum               // sum of inputs
	PSumSq             // sum of squared inputs
	PMin
	PMax
	PHLL // HyperLogLog register set, carried as a string value
	PSet // exact distinct-value set, carried as an encoded string value
)

// Prims returns the primitive vector the spec decomposes into. The order
// is fixed; SubColumns and Finalize use the same order.
func (s Spec) Prims() []Prim {
	switch s.Func {
	case Count:
		return []Prim{PCount}
	case Sum:
		return []Prim{PSum}
	case Avg:
		return []Prim{PSum, PCount}
	case Min:
		return []Prim{PMin}
	case Max:
		return []Prim{PMax}
	case Var, Stddev:
		return []Prim{PCount, PSum, PSumSq}
	case CountD:
		return []Prim{PHLL}
	case CountDX:
		return []Prim{PSet}
	default:
		return nil
	}
}

// SubColName names the i'th primitive column of the spec in shipped
// sub-result rows.
func (s Spec) SubColName(i int) string { return fmt.Sprintf("%s__p%d", s.As, i) }

// SubColumns returns the schema columns holding the spec's primitive
// states in shipped sub-results.
func (s Spec) SubColumns() []relation.Column {
	prims := s.Prims()
	cols := make([]relation.Column, len(prims))
	for i, p := range prims {
		k := value.KindFloat
		switch p {
		case PCount:
			k = value.KindInt
		case PHLL, PSet:
			k = value.KindString
		}
		cols[i] = relation.Column{Name: s.SubColName(i), Kind: k}
	}
	return cols
}

// OutColumn returns the schema column of the finalized aggregate.
func (s Spec) OutColumn() relation.Column {
	k := value.KindFloat
	if s.Func == Count || s.Func == CountD || s.Func == CountDX {
		k = value.KindInt
	}
	return relation.Column{Name: s.As, Kind: k}
}

// Finalize computes the aggregate's final value from its merged primitive
// states, in Prims() order. Empty groups yield 0 for counts and NULL for
// everything else, matching SQL.
func (s Spec) Finalize(prims []value.V) (value.V, error) {
	want := len(s.Prims())
	if len(prims) != want {
		return value.Null, fmt.Errorf("agg: %s: got %d primitive states, want %d", s, len(prims), want)
	}
	switch s.Func {
	case Count:
		if prims[0].IsNull() {
			return value.NewInt(0), nil
		}
		return prims[0], nil
	case Sum, Min, Max:
		return prims[0], nil
	case Avg:
		sum, cnt := prims[0], prims[1]
		if sum.IsNull() || cnt.IsNull() {
			return value.Null, nil
		}
		return value.Div(sum, cnt)
	case Var, Stddev:
		cnt, sum, sumsq := prims[0], prims[1], prims[2]
		if cnt.IsNull() || sum.IsNull() || sumsq.IsNull() {
			return value.Null, nil
		}
		n, err := cnt.AsFloat()
		if err != nil || n == 0 {
			return value.Null, err
		}
		sf, err := sum.AsFloat()
		if err != nil {
			return value.Null, err
		}
		qf, err := sumsq.AsFloat()
		if err != nil {
			return value.Null, err
		}
		v := qf/n - (sf/n)*(sf/n)
		if v < 0 {
			v = 0 // guard rounding
		}
		if s.Func == Stddev {
			v = math.Sqrt(v)
		}
		return value.NewFloat(v), nil
	case CountD:
		if prims[0].IsNull() {
			return value.NewInt(0), nil
		}
		h, err := decodeHLL(prims[0])
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(int64(h.Estimate())), nil
	case CountDX:
		if prims[0].IsNull() {
			return value.NewInt(0), nil
		}
		set, err := decodeSet(prims[0])
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(int64(len(set))), nil
	default:
		return value.Null, fmt.Errorf("agg: unknown function %v", s.Func)
	}
}

// Acc accumulates one primitive state. The same type serves both roles of
// Theorem 1: Add folds detail values at a site (sub-aggregation), Merge
// folds shipped primitive states at the coordinator (super-aggregation).
type Acc struct {
	prim Prim
	star bool // count rows, not non-NULL values

	seen  bool
	i     int64
	f     float64
	isInt bool
	minv  value.V
	hll   *hll
	set   map[string]struct{}
}

// NewAcc returns an empty accumulator for the primitive. star selects
// COUNT(*) row-counting semantics for PCount.
func NewAcc(p Prim, star bool) *Acc {
	a := &Acc{prim: p, star: star}
	if p == PCount || p == PSum {
		a.isInt = true
	}
	if p == PHLL {
		a.hll = newHLL()
	}
	if p == PSet {
		a.set = map[string]struct{}{}
	}
	return a
}

// NewAccs returns one accumulator per primitive of the spec.
func NewAccs(s Spec) []*Acc {
	prims := s.Prims()
	accs := make([]*Acc, len(prims))
	for i, p := range prims {
		accs[i] = NewAcc(p, s.Star())
	}
	return accs
}

// Add folds one detail value into the state (sub-aggregation). NULLs are
// ignored except by COUNT(*).
func (a *Acc) Add(v value.V) error {
	if v.IsNull() && !(a.prim == PCount && a.star) {
		return nil
	}
	switch a.prim {
	case PCount:
		a.i++
		a.seen = true
		return nil
	case PSum, PSumSq:
		f, err := v.AsFloat()
		if err != nil {
			return fmt.Errorf("agg: sum over non-numeric value %s", v)
		}
		if a.prim == PSumSq {
			f *= f
			a.isInt = false
		} else if v.K != value.KindInt && v.K != value.KindBool {
			a.isInt = false
		}
		if a.isInt {
			i, _ := v.AsInt()
			a.i += i
		}
		a.f += f
		a.seen = true
		return nil
	case PMin, PMax:
		if !a.seen {
			a.minv = v
			a.seen = true
			return nil
		}
		c, err := value.Compare(v, a.minv)
		if err != nil {
			return fmt.Errorf("agg: min/max over mixed types: %w", err)
		}
		if a.prim == PMin && c < 0 || a.prim == PMax && c > 0 {
			a.minv = v
		}
		return nil
	case PHLL:
		a.hll.Add(v)
		a.seen = true
		return nil
	case PSet:
		a.set[v.Key()] = struct{}{}
		a.seen = true
		if len(a.set) > maxExactDistinct {
			return fmt.Errorf("agg: exact distinct set exceeds %d values; use countd", maxExactDistinct)
		}
		return nil
	default:
		return fmt.Errorf("agg: unknown primitive %d", a.prim)
	}
}

// Merge folds a shipped primitive state into this one (super-aggregation).
// A NULL state represents an empty group at some site and is a no-op.
func (a *Acc) Merge(v value.V) error {
	if v.IsNull() {
		return nil
	}
	switch a.prim {
	case PCount:
		i, err := v.AsInt()
		if err != nil {
			return fmt.Errorf("agg: merge count: %w", err)
		}
		a.i += i
		a.seen = true
		return nil
	case PSum, PSumSq:
		f, err := v.AsFloat()
		if err != nil {
			return fmt.Errorf("agg: merge sum: %w", err)
		}
		if v.K != value.KindInt && v.K != value.KindBool {
			a.isInt = false
		}
		if a.isInt {
			i, _ := v.AsInt()
			a.i += i
		}
		a.f += f
		a.seen = true
		return nil
	case PMin, PMax:
		return a.Add(v)
	case PHLL:
		other, err := decodeHLL(v)
		if err != nil {
			return fmt.Errorf("agg: merge hll: %w", err)
		}
		a.hll.Merge(other)
		a.seen = true
		return nil
	case PSet:
		other, err := decodeSet(v)
		if err != nil {
			return fmt.Errorf("agg: merge set: %w", err)
		}
		for k := range other {
			a.set[k] = struct{}{}
		}
		if len(a.set) > maxExactDistinct {
			return fmt.Errorf("agg: exact distinct set exceeds %d values; use countd", maxExactDistinct)
		}
		a.seen = true
		return nil
	default:
		return fmt.Errorf("agg: unknown primitive %d", a.prim)
	}
}

// Result returns the primitive state as a shippable value. Empty states
// are NULL except PCount, which is 0.
func (a *Acc) Result() value.V {
	switch a.prim {
	case PCount:
		return value.NewInt(a.i)
	case PSum, PSumSq:
		if !a.seen {
			return value.Null
		}
		if a.isInt {
			return value.NewInt(a.i)
		}
		return value.NewFloat(a.f)
	case PMin, PMax:
		if !a.seen {
			return value.Null
		}
		return a.minv
	case PHLL:
		if !a.seen {
			return value.Null
		}
		return a.hll.Encode()
	case PSet:
		if !a.seen {
			return value.Null
		}
		return encodeSet(a.set)
	default:
		return value.Null
	}
}
