package agg

//lint:deterministic batch accumulation must fold lanes in the same order Add would

import (
	"fmt"

	"repro/internal/value"
)

// Batch accumulation: the vectorized GMDJ engine feeds matched detail
// lanes column-wise instead of calling Add per boxed value. Every method
// folds lanes in ascending index order with the exact arithmetic Add
// uses, so batch and row accumulation produce bit-identical states (float
// sums are order-sensitive).

// AddRows folds n COUNT(*) rows. It is only valid for star-counting
// PCount accumulators; other primitives never see a nil argument.
func (a *Acc) AddRows(n int) error {
	if a.prim != PCount || !a.star {
		return fmt.Errorf("agg: AddRows on non-star primitive %d", a.prim)
	}
	if n > 0 {
		a.i += int64(n)
		a.seen = true
	}
	return nil
}

// AddInts folds int64 lanes of the given kind (KindInt or KindBool);
// nulls, when non-nil, marks NULL lanes, which are skipped exactly as Add
// skips them.
func (a *Acc) AddInts(kind value.Kind, vals []int64, nulls []bool) error {
	switch a.prim {
	case PCount:
		if a.star {
			return a.AddRows(len(vals))
		}
		for i := range vals {
			if nulls != nil && nulls[i] {
				continue
			}
			a.i++
			a.seen = true
		}
		return nil
	case PSum:
		for i, v := range vals {
			if nulls != nil && nulls[i] {
				continue
			}
			if a.isInt {
				a.i += v
			}
			a.f += float64(v)
			a.seen = true
		}
		return nil
	case PSumSq:
		a.isInt = false
		for i, v := range vals {
			if nulls != nil && nulls[i] {
				continue
			}
			f := float64(v)
			a.f += f * f
			a.seen = true
		}
		return nil
	default:
		return a.addBoxed(kind, vals, nil, nil, nulls)
	}
}

// AddFloats folds float64 lanes; nulls, when non-nil, marks NULL lanes.
func (a *Acc) AddFloats(vals []float64, nulls []bool) error {
	switch a.prim {
	case PCount:
		if a.star {
			return a.AddRows(len(vals))
		}
		for i := range vals {
			if nulls != nil && nulls[i] {
				continue
			}
			a.i++
			a.seen = true
		}
		return nil
	case PSum:
		for i, v := range vals {
			if nulls != nil && nulls[i] {
				continue
			}
			a.isInt = false
			a.f += v
			a.seen = true
		}
		return nil
	case PSumSq:
		for i, v := range vals {
			if nulls != nil && nulls[i] {
				continue
			}
			a.isInt = false
			a.f += v * v
			a.seen = true
		}
		return nil
	default:
		return a.addBoxed(value.KindFloat, nil, vals, nil, nulls)
	}
}

// AddStrings folds string lanes; nulls, when non-nil, marks NULL lanes.
func (a *Acc) AddStrings(vals []string, nulls []bool) error {
	switch a.prim {
	case PCount:
		if a.star {
			return a.AddRows(len(vals))
		}
		for i := range vals {
			if nulls != nil && nulls[i] {
				continue
			}
			a.i++
			a.seen = true
		}
		return nil
	case PSum, PSumSq:
		for i := range vals {
			if nulls != nil && nulls[i] {
				continue
			}
			return fmt.Errorf("agg: sum over non-numeric value %s", value.NewString(vals[i]))
		}
		return nil
	default:
		return a.addBoxed(value.KindString, nil, nil, vals, nulls)
	}
}

// AddRepeat folds the same value n times. A broadcast scalar must still
// loop: repeated float addition is not multiplication.
func (a *Acc) AddRepeat(v value.V, n int) error {
	for i := 0; i < n; i++ {
		if err := a.Add(v); err != nil {
			return err
		}
	}
	return nil
}

// addBoxed is the per-lane fallback for order-dependent primitives
// (min/max comparison chains, HLL, exact sets): it boxes each non-null
// lane and defers to Add, preserving Add's exact semantics.
func (a *Acc) addBoxed(kind value.Kind, ints []int64, floats []float64, strs []string, nulls []bool) error {
	n := len(ints)
	if floats != nil {
		n = len(floats)
	}
	if strs != nil {
		n = len(strs)
	}
	for i := 0; i < n; i++ {
		var v value.V
		switch {
		case nulls != nil && nulls[i]:
			v = value.Null
		case strs != nil:
			v = value.NewString(strs[i])
		case floats != nil:
			v = value.NewFloat(floats[i])
		default:
			v = value.V{K: kind, I: ints[i]}
		}
		if err := a.Add(v); err != nil {
			return err
		}
	}
	return nil
}
