package agg

//lint:deterministic shipped sketch/set states must encode to identical wire bytes

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"sort"

	"repro/internal/value"
)

// hll is a HyperLogLog sketch with 2^hllP registers, used for the
// approximate COUNT DISTINCT extension. Sketch states are mergeable by
// pointwise register max, so they ship between sites and coordinator like
// any other sub-aggregate and keep the Theorem 2 traffic bound (each
// group's state is a constant ~1 KiB regardless of detail size).
const hllP = 10 // 1024 registers; standard error ≈ 1.04/sqrt(1024) ≈ 3.3%

type hll struct {
	reg [1 << hllP]uint8
}

func newHLL() *hll { return &hll{} }

// fmix64 is the murmur3 finalizer; FNV alone has weak high-bit entropy on
// short inputs, which starves the register index of variation.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add folds one value into the sketch.
func (h *hll) Add(v value.V) {
	hv := fnv.New64a()
	hv.Write([]byte(v.Key()))
	x := fmix64(hv.Sum64())
	idx := x >> (64 - hllP)
	rest := x<<hllP | (1 << (hllP - 1)) // avoid zero tail
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.reg[idx] {
		h.reg[idx] = rank
	}
}

// Merge folds another sketch into this one.
func (h *hll) Merge(o *hll) {
	for i := range h.reg {
		if o.reg[i] > h.reg[i] {
			h.reg[i] = o.reg[i]
		}
	}
}

// Estimate returns the cardinality estimate with the standard small-range
// (linear counting) correction.
func (h *hll) Estimate() uint64 {
	m := float64(len(h.reg))
	alpha := 0.7213 / (1 + 1.079/m)
	var sum float64
	zeros := 0
	for _, r := range h.reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return uint64(est + 0.5)
}

// Encode packs the register array into a string value for shipping.
func (h *hll) Encode() value.V {
	return value.NewString(string(h.reg[:]))
}

// decodeHLL unpacks a shipped sketch state.
func decodeHLL(v value.V) (*hll, error) {
	if v.K != value.KindString || len(v.S) != 1<<hllP {
		return nil, fmt.Errorf("agg: malformed HLL state (kind %s, len %d)", v.K, len(v.S))
	}
	h := newHLL()
	copy(h.reg[:], v.S)
	return h, nil
}

// maxExactDistinct bounds the shipped state of exact COUNT DISTINCT; a
// group exceeding it should use the HLL sketch instead.
const maxExactDistinct = 100000

// encodeSet packs a distinct-value set for shipping: length-prefixed
// value keys, which are unambiguous for arbitrary key bytes. Keys are
// sorted so identical sets always encode to identical wire bytes — map
// iteration order would otherwise make states compare unequal and byte
// accounting run-dependent.
func encodeSet(set map[string]struct{}) value.V {
	keys := make([]string, 0, len(set))
	for k := range set {
		//lint:ignore detrand keys are sorted immediately below, before any bytes are emitted
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	var lenBuf [10]byte
	for _, k := range keys {
		n := binary.PutUvarint(lenBuf[:], uint64(len(k)))
		b = append(b, lenBuf[:n]...)
		b = append(b, k...)
	}
	return value.NewString(string(b))
}

// decodeSet unpacks a shipped distinct-value set.
func decodeSet(v value.V) (map[string]struct{}, error) {
	if v.K != value.KindString {
		return nil, fmt.Errorf("agg: malformed set state (kind %s)", v.K)
	}
	out := map[string]struct{}{}
	s := v.S
	for len(s) > 0 {
		n, used := binary.Uvarint([]byte(s))
		if used <= 0 || uint64(len(s)-used) < n {
			return nil, fmt.Errorf("agg: truncated set state")
		}
		out[s[used:used+int(n)]] = struct{}{}
		s = s[used+int(n):]
	}
	return out, nil
}
