package agg

import "testing"

// FuzzParseSpec asserts the aggregate-spec parser never panics and that
// the wire form is a fixpoint.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"count(*) AS cnt1",
		"cnt(*) -> cnt1",
		"avg(F.NumBytes) AS avg_nb",
		"sum(x * (1 - y)) AS revenue",
		"countd(ip) AS uniq",
		"stddev(v) AS sd",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseSpec(input)
		if err != nil {
			return
		}
		s1 := spec.String()
		again, err := ParseSpec(s1)
		if err != nil {
			t.Fatalf("wire form does not re-parse: %q -> %q: %v", input, s1, err)
		}
		if s2 := again.String(); s2 != s1 {
			t.Fatalf("wire form not a fixpoint: %q -> %q -> %q", input, s1, s2)
		}
	})
}
