package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilObsIsSafe(t *testing.T) {
	var o *Obs
	o.Count("x", 1)
	o.SetGauge("g", 2)
	o.Observe("h", 3)
	o.Event(EventRetry, "s", "msg", nil)
	ctx, span := o.StartSpan(context.Background(), "q")
	span.SetArg("k", "v")
	span.End()
	if ctx == nil {
		t.Fatal("nil Obs returned nil context")
	}
	var s *Span
	s.SetArg("k", "v")
	s.End()
}

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Counter("a").Add(3)
	r.Gauge("g").Set(7)
	r.Gauge("g").Set(4)
	if got := r.CounterValue("a"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := r.CounterValue("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
	if got := r.Gauge("g").Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 40, 41}, {1<<63 - 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	var h Histogram
	for _, v := range []int64{0, 1, 3, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 107 || s.Min != 0 || s.Max != 100 {
		t.Errorf("snapshot = %+v", s)
	}
	// Only non-empty buckets are emitted, in ascending le order.
	var prev int64 = -1
	var n int64
	for _, b := range s.Buckets {
		if b.Le <= prev {
			t.Errorf("buckets not ascending: %+v", s.Buckets)
		}
		prev = b.Le
		n += b.N
	}
	if n != 5 {
		t.Errorf("bucket counts sum to %d, want 5", n)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, name := range order {
			r.Counter("c." + name).Add(int64(len(name)))
			r.Gauge("g." + name).Set(1)
			r.Histogram("h." + name).Observe(10)
		}
		data, err := r.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	if !bytes.Equal(a, b) {
		t.Errorf("insertion order changed encoding:\n%s\nvs\n%s", a, b)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(a, &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.Counters["c.alpha"] != 5 || len(snap.Histograms) != 3 {
		t.Errorf("decoded snapshot %+v", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c").Add(1)
				r.Histogram("h").Observe(int64(j))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("c"); got != 1600 {
		t.Errorf("counter = %d, want 1600", got)
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 6; i++ {
		l.Append(EventRetry, "s", "m", map[string]string{"i": string(rune('0' + i))})
	}
	if l.Total() != 6 || l.Dropped() != 2 {
		t.Errorf("total=%d dropped=%d, want 6/2", l.Total(), l.Dropped())
	}
	events := l.Events()
	if len(events) != 4 {
		t.Fatalf("len = %d, want 4", len(events))
	}
	for i, e := range events {
		// Seqs are 0-based; the two oldest (0, 1) were evicted.
		if want := int64(i + 2); e.Seq != want {
			t.Errorf("events[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	l.Append(EventChaos, "s2", "x", nil)
	if got := l.CountKind(EventChaos); got != 1 {
		t.Errorf("CountKind(chaos) = %d", got)
	}
	by := l.ByKind(EventChaos)
	if len(by) != 1 || by[0].Site != "s2" {
		t.Errorf("ByKind = %+v", by)
	}
}

func TestTracerChromeExport(t *testing.T) {
	tr := NewTracer()
	now := time.Unix(0, 0)
	tr.SetNow(func() time.Time { return now })

	ctx := context.Background()
	ctx, q := tr.Start(ctx, "query", TrackCoordinator)
	now = now.Add(time.Millisecond)
	rctx, round := tr.Start(ctx, "round:step 1", "") // inherits coordinator track
	now = now.Add(time.Millisecond)
	_, rpc := tr.Start(rctx, "rpc:evalRounds", SiteTrack("site0"))
	now = now.Add(2 * time.Millisecond)
	rpc.End()
	round.End()
	now = now.Add(time.Millisecond)
	q.SetArg("rows", "42")
	q.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  int               `json:"tid"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid chrome trace: %v\n%s", err, buf.Bytes())
	}
	type spanBox struct {
		ts, dur float64
		tid     int
	}
	spans := map[string]spanBox{}
	tracks := map[string]bool{}
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			spans[e.Name] = spanBox{e.Ts, e.Dur, e.Tid}
		case "M":
			tracks[e.Args["name"]] = true
		}
	}
	q2, r2, p2 := spans["query"], spans["round:step 1"], spans["rpc:evalRounds"]
	if !(q2.ts <= r2.ts && r2.ts+r2.dur <= q2.ts+q2.dur) {
		t.Errorf("round does not nest in query: %+v vs %+v", r2, q2)
	}
	if !(r2.ts <= p2.ts && p2.ts+p2.dur <= r2.ts+r2.dur) {
		t.Errorf("rpc does not nest in round: %+v vs %+v", p2, r2)
	}
	if q2.tid != r2.tid {
		t.Errorf("round inherited track mismatch: tid %d vs %d", r2.tid, q2.tid)
	}
	if p2.tid == q2.tid {
		t.Error("rpc span should be on its own site track")
	}
	if !tracks[TrackCoordinator] || !tracks["site:site0"] {
		t.Errorf("track metadata missing: %v", tracks)
	}
}

func TestTracerCapAndReset(t *testing.T) {
	tr := NewTracer()
	tr.SetCap(2)
	for i := 0; i < 5; i++ {
		_, s := tr.Start(context.Background(), "s", "")
		s.End()
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Errorf("len=%d dropped=%d, want 2/3", tr.Len(), tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Errorf("reset left len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestDebugServer(t *testing.T) {
	o := New()
	o.Count("site.rounds_served", 3)
	o.Event(EventFailover, "site1", "failing over", map[string]string{"to": "1"})
	_, span := o.StartSpan(context.Background(), "query")
	span.End()

	srv, err := ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap MetricsSnapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if snap.Counters["site.rounds_served"] != 3 {
		t.Errorf("/metrics counters = %+v", snap.Counters)
	}

	var events []Event
	if err := json.Unmarshal(get("/events"), &events); err != nil {
		t.Fatalf("/events: %v", err)
	}
	if len(events) != 1 || events[0].Kind != EventFailover {
		t.Errorf("/events = %+v", events)
	}
	if err := json.Unmarshal(get("/events?kind=chaos"), &events); err != nil {
		t.Fatalf("/events?kind=chaos: %v", err)
	}
	if len(events) != 0 {
		t.Errorf("kind filter leaked %+v", events)
	}

	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/trace"), &trace); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("/trace has no events")
	}

	if idx := string(get("/")); !strings.Contains(idx, "/metrics") {
		t.Errorf("index missing endpoint list: %q", idx)
	}

	if _, err := ServeDebug("127.0.0.1:0", nil); err == nil {
		t.Error("ServeDebug accepted nil Obs")
	}
}

// TestTracerSetNowConcurrent is the regression test for a data race found
// by the lockguard analyzer: Start and End used to read Tracer.now without
// t.mu while SetNow writes it under the lock. Run with -race.
func TestTracerSetNowConcurrent(t *testing.T) {
	tr := NewTracer()
	base := time.Unix(0, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			at := base.Add(time.Duration(i) * time.Millisecond)
			tr.SetNow(func() time.Time { return at })
			runtime.Gosched()
		}
	}()
	for i := 0; i < 500; i++ {
		_, span := tr.Start(context.Background(), "q", "")
		span.SetArg("i", "x")
		span.End()
		// Yield so the race is observable even on GOMAXPROCS=1.
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if tr.Len() == 0 {
		t.Fatal("no spans recorded")
	}
}
