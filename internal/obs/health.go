package obs

import "sync"

// Health is the process-level health state behind the /healthz and
// /readyz debug endpoints. Liveness ("is the process up") is implicit —
// a served /healthz is alive — while readiness ("should new work be sent
// here") is an explicit flag components flip: a draining site marks
// itself not ready the moment shutdown starts, so coordinators that
// consult /readyz skip it instead of burning a call that would only be
// refused with ErrDraining.
type Health struct {
	mu sync.Mutex
	//lint:guarded-by mu
	ready bool
	//lint:guarded-by mu
	reason string
	//lint:guarded-by mu
	check func() (bool, string)
}

// NewHealth returns a Health that starts ready.
func NewHealth() *Health {
	return &Health{ready: true}
}

// SetReady marks the process ready to accept new work.
func (h *Health) SetReady() {
	h.mu.Lock()
	h.ready = true
	h.reason = ""
	h.mu.Unlock()
}

// SetNotReady marks the process not ready, with a human-readable reason
// ("draining", "restoring snapshot", ...).
func (h *Health) SetNotReady(reason string) {
	h.mu.Lock()
	h.ready = false
	h.reason = reason
	h.mu.Unlock()
}

// SetCheck installs an extra readiness gate consulted by Ready after the
// flag: even a ready process can be vetoed by the check — a coordinator,
// for example, gates its readiness on site fanout health. A nil check
// removes the gate. The check runs outside Health's lock and must be
// safe for concurrent use.
func (h *Health) SetCheck(check func() (bool, string)) {
	h.mu.Lock()
	h.check = check
	h.mu.Unlock()
}

// Ready reports the readiness flag and, when not ready, the reason.
func (h *Health) Ready() (bool, string) {
	h.mu.Lock()
	ready, reason, check := h.ready, h.reason, h.check
	h.mu.Unlock()
	if !ready {
		return false, reason
	}
	if check != nil {
		return check()
	}
	return true, ""
}
