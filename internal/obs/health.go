package obs

import "sync"

// Health is the process-level health state behind the /healthz and
// /readyz debug endpoints. Liveness ("is the process up") is implicit —
// a served /healthz is alive — while readiness ("should new work be sent
// here") is an explicit flag components flip: a draining site marks
// itself not ready the moment shutdown starts, so coordinators that
// consult /readyz skip it instead of burning a call that would only be
// refused with ErrDraining.
type Health struct {
	mu     sync.Mutex
	ready  bool
	reason string
}

// NewHealth returns a Health that starts ready.
func NewHealth() *Health {
	return &Health{ready: true}
}

// SetReady marks the process ready to accept new work.
func (h *Health) SetReady() {
	h.mu.Lock()
	h.ready = true
	h.reason = ""
	h.mu.Unlock()
}

// SetNotReady marks the process not ready, with a human-readable reason
// ("draining", "restoring snapshot", ...).
func (h *Health) SetNotReady(reason string) {
	h.mu.Lock()
	h.ready = false
	h.reason = reason
	h.mu.Unlock()
}

// Ready reports the readiness flag and, when not ready, the reason.
func (h *Health) Ready() (bool, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready, h.reason
}
