package obs

//lint:deterministic metric snapshots must encode identically run to run

import "encoding/json"

// MetricsSnapshot is a point-in-time copy of a whole registry. Its JSON
// encoding is deterministic: encoding/json sorts map keys, histogram
// buckets are ascending arrays, and no wall-clock field is included, so
// two registries holding the same values marshal to identical bytes —
// which makes /metrics responses diffable across runs and hosts.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric in the registry.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := MetricsSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// MarshalJSON renders the snapshot with sorted keys (the encoding/json
// map ordering guarantee), one line per top-level section.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// EncodeJSON returns the indented deterministic JSON of the registry's
// current state.
func (r *Registry) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}
