package obs

import (
	"bytes"
	"encoding/json"
	"sync"
)

// DefaultProfileCap bounds the profile ring of New.
const DefaultProfileCap = 64

// ProfileLog is a bounded ring of the last N execution profiles, each a
// pre-encoded JSON document. Producers (the coordinator's query profiles,
// a site engine's per-request profiles) encode deterministically with the
// statsjson conventions — fixed field order, integer nanoseconds, sorted
// site lists — before appending, so the ring itself stays type-agnostic:
// obs never imports core or transport, and /profiles serves both daemons
// with one implementation.
type ProfileLog struct {
	mu sync.Mutex
	//lint:guarded-by mu
	buf []json.RawMessage
	// head is the index of the oldest entry when full.
	//
	//lint:guarded-by mu
	head int
	//lint:guarded-by mu
	total int64
	//lint:guarded-by mu
	cap int
}

// NewProfileLog returns a profile ring evicting beyond capacity
// (minimum 1).
func NewProfileLog(capacity int) *ProfileLog {
	if capacity < 1 {
		capacity = 1
	}
	return &ProfileLog{cap: capacity}
}

// Add appends one encoded profile, evicting the oldest when full. The
// bytes are retained as-is; callers must not mutate them afterwards.
func (l *ProfileLog) Add(p json.RawMessage) {
	if l == nil || len(p) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, p)
		return
	}
	l.buf[l.head] = p
	l.head = (l.head + 1) % l.cap
}

// Profiles returns the retained profiles, oldest first.
func (l *ProfileLog) Profiles() []json.RawMessage {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]json.RawMessage, 0, len(l.buf))
	out = append(out, l.buf[l.head:]...)
	out = append(out, l.buf[:l.head]...)
	return out
}

// Len returns how many profiles are retained.
func (l *ProfileLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Total returns how many profiles were ever added (retained or evicted).
func (l *ProfileLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// EncodeJSON renders the retained profiles as one JSON array, oldest
// first. Entries keep their producer's deterministic encoding, so the
// array is byte-identical across runs up to timing fields.
func (l *ProfileLog) EncodeJSON() []byte {
	ps := l.Profiles()
	var b bytes.Buffer
	b.WriteString("[")
	for i, p := range ps {
		if i > 0 {
			b.WriteString(",\n")
		} else {
			b.WriteString("\n")
		}
		b.Write(bytes.TrimSpace(p))
	}
	if len(ps) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("]")
	return b.Bytes()
}
