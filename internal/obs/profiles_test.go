package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestProfileLogNilSafe(t *testing.T) {
	var l *ProfileLog
	l.Add(json.RawMessage(`{"a":1}`))
	if l.Len() != 0 || l.Total() != 0 || l.Profiles() != nil {
		t.Error("nil ProfileLog is not inert")
	}
	var o *Obs
	o.AddProfile(json.RawMessage(`{"a":1}`))
}

func TestProfileLogRing(t *testing.T) {
	l := NewProfileLog(3)
	l.Add(nil) // empty entries are dropped, not retained
	for i := 1; i <= 5; i++ {
		l.Add(json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)))
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5", l.Total())
	}
	var got []string
	for _, p := range l.Profiles() {
		got = append(got, string(p))
	}
	want := []string{`{"n":3}`, `{"n":4}`, `{"n":5}`}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("profile[%d] = %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestProfileLogEncodeJSONGolden pins the /profiles payload byte-for-byte:
// one array, oldest first, one entry per line, each entry exactly the
// producer's encoding.
func TestProfileLogEncodeJSONGolden(t *testing.T) {
	l := NewProfileLog(4)
	if got := string(l.EncodeJSON()); got != "[]" {
		t.Errorf("empty ring = %q, want []", got)
	}
	l.Add(json.RawMessage(`{"query_id":"q1","outcome":"ok"}`))
	l.Add(json.RawMessage("{\n  \"query_id\": \"q2\"\n}\n"))
	want := "[\n{\"query_id\":\"q1\",\"outcome\":\"ok\"},\n{\n  \"query_id\": \"q2\"\n}\n]"
	if got := string(l.EncodeJSON()); got != want {
		t.Errorf("EncodeJSON =\n%s\nwant\n%s", got, want)
	}
	var v []map[string]any
	if err := json.Unmarshal(l.EncodeJSON(), &v); err != nil {
		t.Fatalf("EncodeJSON is not valid JSON: %v", err)
	}
	if len(v) != 2 || v[0]["query_id"] != "q1" || v[1]["query_id"] != "q2" {
		t.Errorf("decoded profiles = %+v", v)
	}
}

// TestProfilesEndpoint serves injected profiles over the debug server and
// checks the pprof handlers and runtime gauges ride along.
func TestProfilesEndpoint(t *testing.T) {
	o := New()
	o.AddProfile(json.RawMessage(`{"query_id":"serve-000001","wall_ns":12}`))
	o.AddProfile(json.RawMessage(`{"query_id":"serve-000002","wall_ns":34}`))

	srv, err := ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	want := "[\n{\"query_id\":\"serve-000001\",\"wall_ns\":12},\n{\"query_id\":\"serve-000002\",\"wall_ns\":34}\n]\n"
	if got := string(get("/profiles")); got != want {
		t.Errorf("/profiles = %q, want %q", got, want)
	}

	if body := string(get("/debug/pprof/")); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index does not list profiles: %q", body)
	}

	var snap MetricsSnapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if snap.Gauges["runtime.goroutines"] <= 0 {
		t.Errorf("runtime.goroutines gauge = %d, want > 0", snap.Gauges["runtime.goroutines"])
	}
	if snap.Gauges["runtime.heap_bytes"] <= 0 {
		t.Errorf("runtime.heap_bytes gauge = %d, want > 0", snap.Gauges["runtime.heap_bytes"])
	}
}

func TestHistogramQuantile(t *testing.T) {
	var zero HistogramSnapshot
	if got := zero.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}

	h := NewRegistry().Histogram("q")
	for _, v := range []int64{10, 20, 30, 40, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %d, want min 10", got)
	}
	if got := s.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) = %d, want max 1000", got)
	}
	// Power-of-two buckets: the answer is the bucket upper bound clamped
	// to the observed range, so quantiles are approximate but ordered.
	p50, p99 := s.Quantile(0.5), s.Quantile(0.99)
	if p50 < 10 || p50 > 1000 || p99 < p50 {
		t.Errorf("p50 = %d, p99 = %d: out of range or inverted", p50, p99)
	}
	one := NewRegistry().Histogram("one")
	one.Observe(42)
	if got := one.Snapshot().Quantile(0.5); got != 42 {
		t.Errorf("single-sample Quantile = %d, want 42", got)
	}
}

// TestCountKind is the regression test for CountKind allocating a full
// copy of the ring via ByKind just to count.
func TestCountKind(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 5; i++ {
		l.Append(EventRetry, "site0", "retrying", nil)
	}
	l.Append(EventFailover, "site1", "failing over", nil)
	if got := l.CountKind(EventRetry); got != 5 {
		t.Errorf("CountKind(retry) = %d, want 5", got)
	}
	if got := l.CountKind("absent"); got != 0 {
		t.Errorf("CountKind(absent) = %d, want 0", got)
	}
	allocs := testing.AllocsPerRun(100, func() { l.CountKind(EventRetry) })
	if allocs != 0 {
		t.Errorf("CountKind allocates %.1f per call, want 0", allocs)
	}
}
