package obs

//lint:wrap-errors debug-server failures must stay inspectable with errors.Is/As

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// DebugServer exposes an Obs over HTTP:
//
//	/             index (plain text)
//	/metrics      deterministic JSON snapshot of the registry
//	/events       JSON array of retained events, oldest first (?kind= filters)
//	/trace        Chrome trace_event JSON of the retained spans
//	/profiles     JSON array of the last-N execution profiles
//	/debug/pprof/ the standard Go runtime profiler endpoints
//
// It is the backing of the -debug-addr flag on skalla-site and
// skalla-coord.
type DebugServer struct {
	obs      *Obs
	listener net.Listener
	server   *http.Server
	mux      *http.ServeMux
}

// ServeDebug starts a debug server for o on addr (e.g. "127.0.0.1:0")
// and serves in the background until Close.
func ServeDebug(addr string, o *Obs) (*DebugServer, error) {
	if o == nil {
		return nil, fmt.Errorf("obs: debug server needs a non-nil Obs")
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &DebugServer{obs: o, listener: l, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/profiles", s.handleProfiles)
	// The stdlib pprof handlers normally self-register on
	// http.DefaultServeMux; the debug mux is private, so register them
	// explicitly (same paths the pprof tooling expects).
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.server = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	//lint:ignore goleak Serve returns when Close closes the listener, ending the goroutine
	go s.server.Serve(l)
	return s, nil
}

// Handle registers an additional handler on the debug mux, so a daemon
// can serve its own endpoints (e.g. the coordinator's /query) alongside
// /metrics and the health probes on one listener. Safe to call while the
// server is running.
func (s *DebugServer) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Addr returns the bound address.
func (s *DebugServer) Addr() string { return s.listener.Addr().String() }

// Close stops the server.
func (s *DebugServer) Close() error {
	if err := s.server.Close(); err != nil {
		return fmt.Errorf("obs: close debug server: %w", err)
	}
	return nil
}

func (s *DebugServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "skalla debug endpoints:\n  /metrics      deterministic JSON metrics snapshot\n  /events       incident log (?kind=%s|%s|%s|...)\n  /trace        Chrome trace_event JSON (load in chrome://tracing or Perfetto)\n  /profiles     last-N execution profiles, oldest first\n  /debug/pprof/ Go runtime profiler (CPU, heap, goroutines)\n  /healthz      liveness (200 while the process serves)\n  /readyz       readiness (503 while draining)\n",
		EventRetry, EventFailover, EventChaos)
}

// handleHealthz is the liveness probe: answering at all means alive.
func (s *DebugServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 200 while the process accepts new
// work, 503 with the reason once it stops (e.g. graceful drain).
// Coordinators consult it to skip draining sites without burning a call.
func (s *DebugServer) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.obs.Health == nil {
		fmt.Fprintln(w, "ready")
		return
	}
	ready, reason := s.obs.Health.Ready()
	if !ready {
		http.Error(w, "not ready: "+reason, http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *DebugServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Refresh the runtime gauges at scrape time so every snapshot carries
	// a current picture of the Go runtime without a background sampler.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.obs.SetGauge("runtime.goroutines", int64(runtime.NumGoroutine()))
	s.obs.SetGauge("runtime.heap_bytes", int64(ms.HeapAlloc))
	s.obs.SetGauge("runtime.gc_count", int64(ms.NumGC))
	b, err := s.obs.Metrics.EncodeJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	w.Write([]byte("\n"))
}

func (s *DebugServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	events := s.obs.Events.Events()
	if kind := r.URL.Query().Get("kind"); kind != "" {
		filtered := events[:0:0]
		for _, e := range events {
			if e.Kind == kind {
				filtered = append(filtered, e)
			}
		}
		events = filtered
	}
	if events == nil {
		events = []Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(events); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *DebugServer) handleProfiles(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.obs.Profiles.EncodeJSON())
	w.Write([]byte("\n"))
}

func (s *DebugServer) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.obs.Tracer.WriteChromeTrace(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
