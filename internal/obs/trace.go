package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// TrackDefault is the track of root spans started without an explicit
// track.
const TrackDefault = "main"

// TrackCoordinator is the conventional track name for coordinator-side
// spans (query, rounds, synchronization).
const TrackCoordinator = "coordinator"

// SiteTrack returns the conventional track name for spans of one site's
// RPCs, so every site renders as its own parallel lane on the timeline.
func SiteTrack(siteID string) string { return "site:" + siteID }

// DefaultSpanCap bounds the number of retained finished spans.
const DefaultSpanCap = 1 << 16

// spanRecord is one finished span.
type spanRecord struct {
	name    string
	track   string
	startNs int64 // relative to tracer start
	durNs   int64
	args    map[string]string
}

// Tracer records spans and exports them in the Chrome trace_event format,
// so one distributed round trip — query, plan, rounds, per-site RPCs,
// synchronization — renders on a single chrome://tracing / Perfetto
// timeline. Tracks map to Chrome thread lanes; spans on one track nest by
// time containment.
type Tracer struct {
	mu sync.Mutex
	//lint:guarded-by mu
	epoch time.Time
	//lint:guarded-by mu
	spans []spanRecord
	//lint:guarded-by mu
	dropped int64
	//lint:guarded-by mu
	max int
	//lint:guarded-by mu
	now func() time.Time
}

// clock returns the tracer's current clock function. Start and End read
// the clock through here so a concurrent SetNow (which writes t.now under
// t.mu) never races with span timestamping.
func (t *Tracer) clock() func() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now
}

// NewTracer returns a tracer retaining up to DefaultSpanCap spans.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), max: DefaultSpanCap, now: time.Now}
}

// SetNow overrides the tracer's clock and restarts the epoch at the new
// clock's current time (tests inject virtual time).
func (t *Tracer) SetNow(f func() time.Time) {
	t.mu.Lock()
	t.now = f
	t.epoch = f()
	t.mu.Unlock()
}

// SetCap changes the retained-span bound (minimum 1).
func (t *Tracer) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.max = n
	t.mu.Unlock()
}

// spanCtxKey carries the active span through a context.
type spanCtxKey struct{}

// Span is one in-flight span. A nil *Span is a valid no-op, so callers
// never need to guard End or SetArg.
type Span struct {
	tracer *Tracer
	name   string
	track  string
	start  time.Time

	mu sync.Mutex
	//lint:guarded-by mu
	args map[string]string
	//lint:guarded-by mu
	ended bool
}

// Start opens a span. With track empty the span inherits the track of the
// context's active span (TrackDefault at the root). The returned context
// carries the new span, so nested Start calls land on the same track.
func (t *Tracer) Start(ctx context.Context, name, track string) (context.Context, *Span) {
	if track == "" {
		if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
			track = parent.track
		} else {
			track = TrackDefault
		}
	}
	s := &Span{tracer: t, name: name, track: track, start: t.clock()()}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SetArg attaches a key/value detail rendered in the trace viewer's
// argument pane. Safe on a nil receiver.
func (s *Span) SetArg(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.args == nil {
		s.args = map[string]string{}
	}
	s.args[key] = value
	s.mu.Unlock()
}

// End finishes the span and records it. Safe on a nil receiver; double
// End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	args := s.args
	s.mu.Unlock()

	t := s.tracer
	end := t.clock()()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		t.dropped++
		return
	}
	t.spans = append(t.spans, spanRecord{
		name:    s.name,
		track:   s.track,
		startNs: s.start.Sub(t.epoch).Nanoseconds(),
		durNs:   end.Sub(s.start).Nanoseconds(),
		args:    args,
	})
}

// Len returns the number of retained finished spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many finished spans were discarded by the cap.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all retained spans and restarts the epoch.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = nil
	t.dropped = 0
	t.epoch = t.now()
}

// chromeEvent is one trace_event entry. Complete spans use ph "X"
// (ts + dur, microseconds); thread metadata uses ph "M".
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the containing object Perfetto and chrome://tracing load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the retained spans as Chrome trace_event JSON.
// Each track becomes one thread lane (named via metadata events); spans
// are sorted by start time then duration (longest first) so parents
// precede children and the export is stable regardless of goroutine
// completion order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	spans := append([]spanRecord(nil), t.spans...)
	t.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].startNs != spans[j].startNs {
			return spans[i].startNs < spans[j].startNs
		}
		return spans[i].durNs > spans[j].durNs
	})

	// Assign tids in first-appearance order of the sorted spans; track
	// names sort the lanes in the viewer via the sort_index convention.
	tids := map[string]int{}
	var trackOrder []string
	for _, s := range spans {
		if _, ok := tids[s.track]; !ok {
			tids[s.track] = len(tids) + 1
			trackOrder = append(trackOrder, s.track)
		}
	}

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, track := range trackOrder {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[track],
			Args: map[string]string{"name": track},
		})
	}
	for _, s := range spans {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.name, Ph: "X",
			Ts:  float64(s.startNs) / 1e3,
			Dur: float64(s.durNs) / 1e3,
			Pid: 1, Tid: tids[s.track],
			Args: s.args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: encode chrome trace: %w", err)
	}
	return nil
}
