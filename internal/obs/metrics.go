package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increases the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins metric.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of every histogram: bucket i
// holds observations v with v <= 2^i - 1 (bucket 0 holds v <= 0), so the
// scale is logarithmic with fixed power-of-two boundaries and snapshots
// from different processes are always comparable bucket by bucket.
const histBuckets = 64

// Histogram accumulates int64 observations into fixed log-scale buckets.
// Typical uses record nanosecond durations or byte sizes.
type Histogram struct {
	mu sync.Mutex
	//lint:guarded-by mu
	count int64
	//lint:guarded-by mu
	sum int64
	//lint:guarded-by mu
	min int64
	//lint:guarded-by mu
	max int64
	//lint:guarded-by mu
	buckets [histBuckets]int64
}

// bucketOf returns the bucket index for v: 0 for v <= 0, else
// 1 + floor(log2(v)) capped at the last bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// BucketCount is one non-empty histogram bucket: N observations with
// value <= Le.
type BucketCount struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets are
// ascending by upper bound and include only non-empty buckets.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		le := int64(0)
		if i > 0 {
			if i >= 63 {
				le = math.MaxInt64
			} else {
				le = int64(1)<<uint(i) - 1
			}
		}
		s.Buckets = append(s.Buckets, BucketCount{Le: le, N: n})
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) of the observed
// values by nearest rank over the log-scale buckets: the returned value
// is the upper bound of the bucket containing the rank, clamped to the
// observed [Min, Max]. The log-2 bucket boundaries make it an
// order-of-magnitude estimate, which is what latency p50/p99 reporting
// needs; it is deterministic for a fixed observation multiset.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	var seen int64
	for _, b := range s.Buckets {
		seen += b.N
		if seen >= rank {
			v := b.Le
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// Registry holds named metrics. Metric accessors create on first use, so
// publishing code never registers up front; names are flat dot-separated
// paths ("coord.bytes_to_sites").
type Registry struct {
	mu sync.Mutex
	//lint:guarded-by mu
	counters map[string]*Counter
	//lint:guarded-by mu
	gauges map[string]*Gauge
	//lint:guarded-by mu
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValue returns the named counter's value, or 0 if it was never
// touched (without creating it) — convenient for test assertions.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}
