package obs

import (
	"sync"
	"time"
)

// Event kinds published by the built-in components. The log accepts any
// string kind; these constants keep producers and test assertions in
// agreement.
const (
	// EventRetry: a transport attempt failed and will be retried at the
	// same endpoint (fields: op, attempt, endpoint, error).
	EventRetry = "retry"
	// EventFailover: retries at one endpoint were exhausted and the call
	// moved to the next replica (fields: op, from, to).
	EventFailover = "failover"
	// EventRedial: a dial to the current endpoint failed (fields:
	// endpoint, error).
	EventRedial = "redial"
	// EventChaos: the chaos wrapper injected a fault (fields: op, fault).
	EventChaos = "chaos"
	// EventSiteLost: a site contributed nothing to a round (fields:
	// round, error).
	EventSiteLost = "site-lost"
	// EventPartial: a query completed as a degraded partial result
	// (fields: lost).
	EventPartial = "partial"
	// EventDrain: a server started or finished graceful drain (fields:
	// phase, inflight).
	EventDrain = "drain"
	// EventOverload: a site shed a request under a resource limit, or a
	// client failed over because of a shed response (fields: op, limit or
	// from/to).
	EventOverload = "overload"
	// EventReplay: the coordinator re-issued a failed site's round
	// request instead of aborting the round (fields: round, attempt,
	// error), or a site answered a replayed (epoch, round) from its dedup
	// cache (fields: epoch, round).
	EventReplay = "replay"
	// EventCheckpoint: a round checkpoint was written, resumed from, or
	// cleared (fields: epoch, round, action).
	EventCheckpoint = "checkpoint"
	// EventAdmission: the scheduler rejected or timed out a query at the
	// admission boundary instead of letting it pile onto loaded sites
	// (fields: reason, running, queued).
	EventAdmission = "admission"
	// EventSlowQuery: a profiled query's wall time crossed the slow-query
	// threshold (fields: query_id, wall_ms, threshold_ms).
	EventSlowQuery = "slow-query"
	// EventStraggler: one site dominated a round — its compute time was a
	// multiple of the round's median (fields: query_id, round, ratio_x1000).
	EventStraggler = "straggler"
	// EventHedge: a round request exceeded the hedge threshold (or its
	// primary failed) and a duplicate was launched on the next replica
	// (fields: op, reason, round).
	EventHedge = "hedge"
	// EventBreaker: a site's circuit breaker changed state — opened on
	// consecutive failures, half-opened for a probe, or closed again
	// (fields: state, threshold).
	EventBreaker = "breaker"
)

// DefaultEventCap bounds the event log of New.
const DefaultEventCap = 1024

// Event is one discrete incident.
type Event struct {
	// Seq increases by one per appended event, including events that were
	// later evicted, so consumers can detect gaps.
	Seq int64 `json:"seq"`
	// Time is the append time.
	Time time.Time `json:"time"`
	// Kind classifies the incident (see the Event* constants).
	Kind string `json:"kind"`
	// Site is the logical site involved, when there is one.
	Site string `json:"site,omitempty"`
	// Msg is a human-readable one-liner.
	Msg string `json:"msg,omitempty"`
	// Fields carry structured details.
	Fields map[string]string `json:"fields,omitempty"`
}

// EventLog is a bounded in-memory ring of events: appending beyond the
// capacity evicts the oldest entries, so a long-running daemon's incident
// history stays fresh and its memory stays bounded.
type EventLog struct {
	mu sync.Mutex
	//lint:guarded-by mu
	buf []Event
	// head is the index of the oldest event when full.
	//
	//lint:guarded-by mu
	head int
	// next is the next sequence number.
	//
	//lint:guarded-by mu
	next int64
	//lint:guarded-by mu
	cap int
	//lint:guarded-by mu
	now func() time.Time
}

// NewEventLog returns an event log evicting beyond capacity (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{cap: capacity, now: time.Now}
}

// SetNow overrides the clock (tests inject fixed timestamps).
func (l *EventLog) SetNow(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Append records one event, evicting the oldest if the log is full.
func (l *EventLog) Append(kind, site, msg string, fields map[string]string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Event{Seq: l.next, Time: l.now(), Kind: kind, Site: site, Msg: msg, Fields: fields}
	l.next++
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.head] = e
	l.head = (l.head + 1) % l.cap
}

// Events returns a copy of the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.head:]...)
	out = append(out, l.buf[:l.head]...)
	return out
}

// ByKind returns the retained events of one kind, oldest first.
func (l *EventLog) ByKind(kind string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// CountKind returns how many retained events have the given kind. It
// counts under the lock without copying the ring (ByKind would allocate
// a full event slice just to take its length).
func (l *EventLog) CountKind(kind string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.buf {
		if l.buf[i].Kind == kind {
			n++
		}
	}
	return n
}

// Total returns how many events were ever appended (retained or evicted).
func (l *EventLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Dropped returns how many events were evicted by the capacity bound.
func (l *EventLog) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - int64(len(l.buf))
}
