// Package obs is the observability subsystem of the Skalla reproduction:
// a stdlib-only metrics registry (counters, gauges, log-scale histograms),
// a span tracer with a Chrome trace_event exporter, and a bounded
// in-memory event log for discrete incidents (retries, failovers, chaos
// injections, partial-result degradations).
//
// The paper's evaluation is an argument about where time and bytes go per
// synchronization round; obs makes that story visible on a *running*
// system instead of only in a one-shot ExecStats printout. Transport
// clients publish wire totals, the Reconnector publishes retry/failover
// activity, site engines publish rounds served and compute histograms,
// and the coordinator publishes per-round byte and group counters that
// match ExecStats exactly.
//
// All of Obs's helper methods are nil-receiver safe: a component holding
// a nil *Obs publishes nothing at almost zero cost, so observability is
// strictly opt-in and the hot paths carry no mandatory overhead.
//
// Surface it with ServeDebug (the /metrics, /events, and /trace HTTP
// endpoints used by the -debug-addr flags of skalla-site and
// skalla-coord) or programmatically via Registry.Snapshot,
// EventLog.Events, and Tracer.WriteChromeTrace.
package obs

import (
	"context"
	"encoding/json"
)

// Obs bundles the observability pillars. Components accept a *Obs and
// publish through its nil-safe helpers.
type Obs struct {
	// Metrics is the counter/gauge/histogram registry.
	Metrics *Registry
	// Tracer records spans for the Chrome trace timeline.
	Tracer *Tracer
	// Events is the bounded incident log.
	Events *EventLog
	// Health is the readiness state behind /healthz and /readyz.
	Health *Health
	// Profiles is the bounded last-N execution-profile ring behind
	// /profiles (per-query profiles on a coordinator, per-request
	// profiles on a site).
	Profiles *ProfileLog
}

// New returns an Obs with a fresh registry, tracer, event log, profile
// ring, and a ready health state.
func New() *Obs {
	return &Obs{
		Metrics:  NewRegistry(),
		Tracer:   NewTracer(),
		Events:   NewEventLog(DefaultEventCap),
		Health:   NewHealth(),
		Profiles: NewProfileLog(DefaultProfileCap),
	}
}

// Default is the shared process-wide instance used by daemons that want
// one registry across all their components (e.g. cmd/skalla-site).
// Libraries never publish to Default implicitly; it must be injected.
var Default = New()

// Count adds delta to the named counter. Safe on a nil receiver.
func (o *Obs) Count(name string, delta int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(name).Add(delta)
}

// SetGauge sets the named gauge. Safe on a nil receiver.
func (o *Obs) SetGauge(name string, v int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Gauge(name).Set(v)
}

// Observe records v into the named histogram. Safe on a nil receiver.
func (o *Obs) Observe(name string, v int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Histogram(name).Observe(v)
}

// SetNotReady flips the health state to not-ready with a reason. Safe on
// a nil receiver.
func (o *Obs) SetNotReady(reason string) {
	if o == nil || o.Health == nil {
		return
	}
	o.Health.SetNotReady(reason)
}

// SetReady flips the health state back to ready. Safe on a nil receiver.
func (o *Obs) SetReady() {
	if o == nil || o.Health == nil {
		return
	}
	o.Health.SetReady()
}

// AddProfile appends one pre-encoded execution profile to the profile
// ring. Safe on a nil receiver.
func (o *Obs) AddProfile(p json.RawMessage) {
	if o == nil || o.Profiles == nil {
		return
	}
	o.Profiles.Add(p)
}

// Event appends an incident to the event log. Safe on a nil receiver.
func (o *Obs) Event(kind, site, msg string, fields map[string]string) {
	if o == nil || o.Events == nil {
		return
	}
	o.Events.Append(kind, site, msg, fields)
}

// StartSpan opens a span named name on the track inherited from the
// context (or TrackDefault at the root). Safe on a nil receiver: the
// returned context is ctx and the span is a no-op.
func (o *Obs) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if o == nil || o.Tracer == nil {
		return ctx, nil
	}
	return o.Tracer.Start(ctx, name, "")
}

// StartSpanTrack opens a span on an explicit track (one horizontal lane
// of the Chrome trace timeline, e.g. "coordinator" or "site:site0").
// Safe on a nil receiver.
func (o *Obs) StartSpanTrack(ctx context.Context, name, track string) (context.Context, *Span) {
	if o == nil || o.Tracer == nil {
		return ctx, nil
	}
	return o.Tracer.Start(ctx, name, track)
}
